//! Paper-scale sharded fleet (§6) — the deployment sections of the
//! paper run RoCEv2 across entire Clos podsets; this scenario exercises
//! the simulator at that scale: a ≥4096-host fabric (8 pods × 8 ToRs ×
//! 64 servers) built once and advanced through the conservative
//! cross-shard exchange with a configurable worker-shard count.
//!
//! The workload is deliberately light — one cross-pod saturating flow
//! per pod (a ring, so every flow crosses a shard boundary when
//! `shards > 1`) plus one intra-pod rack-to-rack flow per pod — because
//! the point is the *engine*, not the traffic: the result reports the
//! per-shard wall-clock split, exchange-epoch and boundary-message
//! counts, timer-wheel occupancy, flow-cache hit rates, and packet-slab
//! footprint that tell us whether sharding pays at fleet scale. The
//! same shape scales to the paper's full deployments (raise
//! `servers_per_tor`/`tors_per_pod`; nothing in the build path is
//! quadratic in hosts).
//!
//! Determinism: the run is digest-pinnable like every other scenario —
//! for a fixed shard count, serial and threaded epoch execution produce
//! byte-identical digests (guarantee 2 of [`crate::sharded`]), which is
//! what the CI smoke asserts via `--shards N` / `--serial`.

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_topology::ClosSpec;

use crate::cluster::ClusterBuilder;
use crate::profiles::ExecutionProfile;
use crate::sharded::ShardedCluster;

/// Engine-load figures for one worker shard.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Wall-clock nanoseconds this shard spent inside `run_until`.
    pub wall_nanos: u64,
    /// Events the shard dispatched.
    pub events: u64,
    /// Peak timer-wheel occupancy (live entries) the shard reached.
    pub wheel_max_occupancy: u64,
    /// Packet-slab slots the shard grew to.
    pub slab_capacity: usize,
    /// Packet-slab slots still live at the end of the run.
    pub slab_live: usize,
}

/// Result of the paper-scale sharded fleet run.
#[derive(Debug, Clone)]
pub struct FleetScaleResult {
    /// Hosts in the fabric (must be ≥ 4096).
    pub hosts: usize,
    /// Switches in the fabric.
    pub switches: usize,
    /// Effective worker shards (the partition may collapse a request).
    pub shards: usize,
    /// Global dispatch digest (determinism pin).
    pub digest: u64,
    /// Total events dispatched across all shards.
    pub events: u64,
    /// Exchange epochs executed (0 with one shard).
    pub epochs: u64,
    /// Boundary messages carried across shards.
    pub boundary_messages: u64,
    /// Conservative lookahead in picoseconds (0 with one shard).
    pub lookahead_ps: u64,
    /// Receiver-side RDMA goodput, bytes.
    pub goodput_bytes: u64,
    /// Lossless drops (must be 0 — PFC holds at scale).
    pub lossless_drops: u64,
    /// Flow-decision cache hits across every switch.
    pub flow_cache_hits: u64,
    /// Flow-decision cache misses across every switch.
    pub flow_cache_misses: u64,
    /// Total packet-slab footprint across shards, bytes.
    pub slab_bytes: u64,
    /// Per-shard engine load (index = shard).
    pub per_shard: Vec<ShardLoad>,
}

impl FleetScaleResult {
    /// Flow-cache hit rate over the whole fabric, 0..=1.
    pub fn flow_cache_hit_rate(&self) -> f64 {
        let total = self.flow_cache_hits + self.flow_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.flow_cache_hits as f64 / total as f64
    }

    /// Wall-clock imbalance: max shard wall over mean shard wall (1.0 is
    /// a perfect split; meaningful only for threaded multi-shard runs).
    pub fn wall_imbalance(&self) -> f64 {
        let max = self
            .per_shard
            .iter()
            .map(|s| s.wall_nanos)
            .max()
            .unwrap_or(0);
        let sum: u64 = self.per_shard.iter().map(|s| s.wall_nanos).sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.per_shard.len() as f64 / sum as f64
    }
}

/// The fleet fabric: 8 pods × 8 ToRs × 64 servers = 4096 hosts, with
/// 2 leaves per pod and 4 spines in 2 planes — the smallest shape that
/// clears the paper-scale floor while keeping a CI run cheap.
pub fn spec() -> ClosSpec {
    ClosSpec::uniform_40g(8, 8, 2, 4, 64)
}

/// Build the fleet at `shards` worker shards, drive the ring workload
/// for `dur`, and collect the engine figures. `threaded = false` runs
/// the exchange epochs serially on the caller's thread (differential
/// mode; byte-identical results).
pub fn run(shards: u32, threaded: bool, dur: SimTime) -> FleetScaleResult {
    let spec = spec();
    let mut c: ShardedCluster = ClusterBuilder::new(spec)
        .seed(41)
        .execution(ExecutionProfile::Sharded { shards })
        .build_sharded();
    c.set_threaded(threaded);

    let pods = spec.pods;
    for p in 0..pods {
        // Cross-pod ring: pod p's rack-0 lead server saturates toward
        // pod p+1's — with `shards > 1` every one of these flows rides
        // the exchange.
        let src = c.servers_under(p, 0)[0];
        let dst = c.servers_under((p + 1) % pods, 0)[1];
        c.connect_qp(
            src,
            dst,
            7000 + p as u16,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
        // Intra-pod rack-to-rack flow: keeps every shard busy between
        // exchanges, so the wall-clock split measures real overlap.
        let a = c.servers_under(p, 1)[0];
        let b = c.servers_under(p, 2)[0];
        c.connect_qp(
            a,
            b,
            7400 + p as u16,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    c.run_until(dur);

    let pkt_size = std::mem::size_of::<rocescale_packet::Packet>() as u64;
    let per_shard: Vec<ShardLoad> = (0..c.shard_count())
        .map(|s| {
            let w = c.world(s);
            ShardLoad {
                wall_nanos: c.shard_wall_nanos()[s],
                events: w.events_processed(),
                wheel_max_occupancy: w.sched_stats().max_occupancy,
                slab_capacity: w.packet_slab_capacity(),
                slab_live: w.packet_slab_len(),
            }
        })
        .collect();
    let (flow_cache_hits, flow_cache_misses) = c.flow_cache_totals();
    FleetScaleResult {
        hosts: c.server_count(),
        switches: c.switch_count(),
        shards: c.shard_count(),
        digest: c.dispatch_digest(),
        events: c.events_processed(),
        epochs: c.exchange_epochs(),
        boundary_messages: c.boundary_messages(),
        lookahead_ps: c.lookahead().map_or(0, |l| l.as_ps()),
        goodput_bytes: c.total_rdma_goodput(),
        lossless_drops: c.lossless_drops(),
        flow_cache_hits,
        flow_cache_misses,
        slab_bytes: per_shard
            .iter()
            .map(|s| s.slab_capacity as u64)
            .sum::<u64>()
            * pkt_size,
        per_shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimTime = SimTime::from_micros(120);

    #[test]
    fn fleet_clears_the_paper_scale_floor_and_stays_lossless() {
        let r = run(2, true, DUR);
        assert!(r.hosts >= 4096, "paper-scale floor: {}", r.hosts);
        assert_eq!(r.shards, 2);
        assert!(r.epochs > 0, "multi-shard runs advance in epochs: {r:?}");
        assert!(r.boundary_messages > 0, "the ring crosses shards: {r:?}");
        assert!(r.goodput_bytes > 0, "{r:?}");
        assert_eq!(r.lossless_drops, 0, "PFC must hold at scale: {r:?}");
        assert!(r.lookahead_ps > 0);
        assert!(r.flow_cache_hits > 0, "caches must warm up: {r:?}");
        assert!(r.slab_bytes > 0);
        assert_eq!(r.per_shard.len(), 2);
        assert!(r.per_shard.iter().all(|s| s.events > 0));
        assert!(r.per_shard.iter().all(|s| s.wheel_max_occupancy > 0));
    }

    #[test]
    fn serial_and_threaded_fleet_runs_pin_the_same_digest() {
        let a = run(2, true, DUR);
        let b = run(2, false, DUR);
        assert_eq!(
            (a.digest, a.events, a.epochs, a.boundary_messages),
            (b.digest, b.events, b.epochs, b.boundary_messages)
        );
    }
}
