//! Paper-scale sharded fleet (§6) — the deployment sections of the
//! paper run RoCEv2 across entire Clos podsets; this scenario exercises
//! the simulator at that scale: a ≥4096-host fabric (8 pods × 8 ToRs ×
//! 64 servers by default) built once and advanced through the
//! conservative cross-shard exchange with a configurable worker-shard
//! count. The [`spec_with`] knobs raise the same shape to the paper's
//! full deployments — 8 pods × 40 ToRs × 320 servers is a 102 400-host
//! fabric; nothing in the build path is quadratic in hosts.
//!
//! The workload is deliberately light — one cross-pod bursting flow per
//! pod (a ring, so every flow crosses a shard boundary when
//! `shards > 1`) plus one intra-pod rack-to-rack flow per pod — because
//! the point is the *engine*, not the traffic: the result reports the
//! per-shard wall-clock split, exchange-epoch/skipped-epoch and
//! boundary-message counts, timer-wheel occupancy, flow-cache hit
//! rates, and packet-slab footprint that tell us whether sharding pays
//! at fleet scale. The flows are [`QpApp::Burst`]s (bounded transfers),
//! so the run has the bulk-transfer shape of real fleets: a busy ramp,
//! then a quiet tail where only periodic host timers fire — which is
//! exactly what adaptive epoch pacing skips over.
//!
//! Determinism: the run is digest-pinnable like every other scenario —
//! for a fixed shard count, serial and threaded epoch execution produce
//! byte-identical digests (guarantee 2 of [`crate::sharded`]), and
//! dense vs adaptive pacing dispatches the byte-identical event stream,
//! which is what the CI smoke asserts via `--shards N` / `--serial`.

use rocescale_nic::QpApp;
use rocescale_sim::{EpochPacing, SimTime};
use rocescale_topology::ClosSpec;

use crate::cluster::ClusterBuilder;
use crate::profiles::ExecutionProfile;
use crate::sharded::ShardedCluster;

/// Engine-load figures for one worker shard.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Wall-clock nanoseconds this shard spent inside `run_until`.
    pub wall_nanos: u64,
    /// Events the shard dispatched.
    pub events: u64,
    /// Peak timer-wheel occupancy (live entries) the shard reached.
    pub wheel_max_occupancy: u64,
    /// Packet-slab slots the shard grew to.
    pub slab_capacity: usize,
    /// Packet-slab slots still live at the end of the run.
    pub slab_live: usize,
}

/// Result of the paper-scale sharded fleet run.
#[derive(Debug, Clone)]
pub struct FleetScaleResult {
    /// Hosts in the fabric (must be ≥ 4096).
    pub hosts: usize,
    /// Switches in the fabric.
    pub switches: usize,
    /// Effective worker shards (the partition may collapse a request).
    pub shards: usize,
    /// Global dispatch digest (determinism pin).
    pub digest: u64,
    /// Total events dispatched across all shards.
    pub events: u64,
    /// Exchange epochs executed (0 with one shard).
    pub epochs: u64,
    /// Grid windows adaptive pacing proved idle and jumped over (0 with
    /// one shard or dense pacing). `epochs + epochs_skipped` is the
    /// dense grid count for the same run.
    pub epochs_skipped: u64,
    /// Boundary messages carried across shards.
    pub boundary_messages: u64,
    /// Conservative lookahead in picoseconds (0 with one shard).
    pub lookahead_ps: u64,
    /// Receiver-side RDMA goodput, bytes.
    pub goodput_bytes: u64,
    /// Lossless drops (must be 0 — PFC holds at scale).
    pub lossless_drops: u64,
    /// Flow-decision cache hits across every switch.
    pub flow_cache_hits: u64,
    /// Flow-decision cache misses across every switch.
    pub flow_cache_misses: u64,
    /// Total packet-slab footprint across shards, bytes.
    pub slab_bytes: u64,
    /// Per-shard engine load (index = shard).
    pub per_shard: Vec<ShardLoad>,
}

impl FleetScaleResult {
    /// Flow-cache hit rate over the whole fabric, 0..=1.
    pub fn flow_cache_hit_rate(&self) -> f64 {
        let total = self.flow_cache_hits + self.flow_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.flow_cache_hits as f64 / total as f64
    }

    /// The dense grid-epoch count this run would have executed without
    /// skipping (executed + skipped).
    pub fn dense_epochs(&self) -> u64 {
        self.epochs + self.epochs_skipped
    }

    /// Wall-clock imbalance: max shard wall over mean shard wall (1.0 is
    /// a perfect split; meaningful only for threaded multi-shard runs).
    pub fn wall_imbalance(&self) -> f64 {
        let max = self
            .per_shard
            .iter()
            .map(|s| s.wall_nanos)
            .max()
            .unwrap_or(0);
        let sum: u64 = self.per_shard.iter().map(|s| s.wall_nanos).sum();
        if sum == 0 {
            return 1.0;
        }
        max as f64 * self.per_shard.len() as f64 / sum as f64
    }
}

/// The default fleet fabric: 8 pods × 8 ToRs × 64 servers = 4096 hosts,
/// with 2 leaves per pod and 4 spines in 2 planes — the smallest shape
/// that clears the paper-scale floor while keeping a CI run cheap.
pub fn spec() -> ClosSpec {
    spec_with(8, 64)
}

/// The fleet fabric at a chosen rack shape: 8 pods × `tors_per_pod` ×
/// `servers_per_tor` hosts (2 leaves per pod, 4 spines). The 100k-class
/// deployment of §6 is `spec_with(40, 320)` = 102 400 hosts.
pub fn spec_with(tors_per_pod: u32, servers_per_tor: u32) -> ClosSpec {
    ClosSpec::uniform_40g(8, tors_per_pod, 2, 4, servers_per_tor)
}

/// Messages each ring flow sends before going quiet (64 KiB each). Ten
/// messages ≈ 130 µs of wire time at 40G, so the standard 300 µs bench
/// run is roughly half busy ramp, half quiet tail.
const BURST_MSGS: u32 = 10;

/// Build the fleet at `shards` worker shards, drive the ring workload
/// for `dur`, and collect the engine figures. `threaded = false` runs
/// the exchange epochs serially on the caller's thread; `pacing`
/// chooses dense grid epochs or adaptive skipping — both knobs are
/// differential: results are byte-identical either way.
pub fn run_spec(
    spec: ClosSpec,
    shards: u32,
    threaded: bool,
    pacing: EpochPacing,
    dur: SimTime,
) -> FleetScaleResult {
    let mut c: ShardedCluster = ClusterBuilder::new(spec)
        .seed(41)
        .execution(ExecutionProfile::Sharded { shards })
        .build_sharded();
    c.set_threaded(threaded);
    c.set_pacing(pacing);

    let burst = || QpApp::Burst {
        msg_len: 64 * 1024,
        count: BURST_MSGS,
        inflight: 2,
    };
    let pods = spec.pods;
    for p in 0..pods {
        // Cross-pod ring: pod p's rack-0 lead server bursts toward pod
        // p+1's — with `shards > 1` every one of these flows rides the
        // exchange.
        let src = c.servers_under(p, 0)[0];
        let dst = c.servers_under((p + 1) % pods, 0)[1];
        c.connect_qp(src, dst, 7000 + p as u16, burst(), QpApp::None);
        // Intra-pod rack-to-rack flow: keeps every shard busy between
        // exchanges, so the wall-clock split measures real overlap. Rack
        // picks wrap so 2-ToR shapes work; the endpoints stay distinct
        // because `b` takes its rack's last server.
        let tors = spec.tors_per_pod;
        let a = c.servers_under(p, 1 % tors)[0];
        let b = *c.servers_under(p, 2 % tors).last().unwrap();
        c.connect_qp(a, b, 7400 + p as u16, burst(), QpApp::None);
    }
    c.run_until(dur);

    let pkt_size = std::mem::size_of::<rocescale_packet::Packet>() as u64;
    let per_shard: Vec<ShardLoad> = (0..c.shard_count())
        .map(|s| {
            let w = c.world(s);
            ShardLoad {
                wall_nanos: c.shard_wall_nanos()[s],
                events: w.events_processed(),
                wheel_max_occupancy: w.sched_stats().max_occupancy,
                slab_capacity: w.packet_slab_capacity(),
                slab_live: w.packet_slab_len(),
            }
        })
        .collect();
    let (flow_cache_hits, flow_cache_misses) = c.flow_cache_totals();
    FleetScaleResult {
        hosts: c.server_count(),
        switches: c.switch_count(),
        shards: c.shard_count(),
        digest: c.dispatch_digest(),
        events: c.events_processed(),
        epochs: c.exchange_epochs(),
        epochs_skipped: c.epochs_skipped(),
        boundary_messages: c.boundary_messages(),
        lookahead_ps: c.lookahead().map_or(0, |l| l.as_ps()),
        goodput_bytes: c.total_rdma_goodput(),
        lossless_drops: c.lossless_drops(),
        flow_cache_hits,
        flow_cache_misses,
        slab_bytes: per_shard
            .iter()
            .map(|s| s.slab_capacity as u64)
            .sum::<u64>()
            * pkt_size,
        per_shard,
    }
}

/// [`run_spec`] on the default 4096-host fabric with adaptive pacing.
pub fn run(shards: u32, threaded: bool, dur: SimTime) -> FleetScaleResult {
    run_spec(spec(), shards, threaded, EpochPacing::Adaptive, dur)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: SimTime = SimTime::from_micros(120);

    #[test]
    fn fleet_clears_the_paper_scale_floor_and_stays_lossless() {
        let r = run(2, true, DUR);
        assert!(r.hosts >= 4096, "paper-scale floor: {}", r.hosts);
        assert_eq!(r.shards, 2);
        assert!(r.epochs > 0, "multi-shard runs advance in epochs: {r:?}");
        assert!(r.boundary_messages > 0, "the ring crosses shards: {r:?}");
        assert!(r.goodput_bytes > 0, "{r:?}");
        assert_eq!(r.lossless_drops, 0, "PFC must hold at scale: {r:?}");
        assert!(r.lookahead_ps > 0);
        assert!(r.flow_cache_hits > 0, "caches must warm up: {r:?}");
        assert!(r.slab_bytes > 0);
        assert_eq!(r.per_shard.len(), 2);
        assert!(r.per_shard.iter().all(|s| s.events > 0));
        assert!(r.per_shard.iter().all(|s| s.wheel_max_occupancy > 0));
    }

    #[test]
    fn serial_and_threaded_fleet_runs_pin_the_same_digest() {
        let a = run(2, true, DUR);
        let b = run(2, false, DUR);
        assert_eq!(
            (
                a.digest,
                a.events,
                a.epochs,
                a.epochs_skipped,
                a.boundary_messages
            ),
            (
                b.digest,
                b.events,
                b.epochs,
                b.epochs_skipped,
                b.boundary_messages
            )
        );
    }

    #[test]
    fn adaptive_pacing_skips_the_quiet_tail_without_changing_physics() {
        // A small fleet (8 pods × 2 ToRs × 2 servers) so the dense
        // differential run stays cheap: the bursts drain by ~450 µs
        // (DCQCN ramp included) and the tail is periodic host timers
        // only — adaptive pacing must jump the idle windows between
        // them and still dispatch the byte-identical event stream.
        let small = spec_with(2, 2);
        let dur = SimTime::from_micros(600);
        let adaptive = run_spec(small, 4, false, EpochPacing::Adaptive, dur);
        let dense = run_spec(small, 4, false, EpochPacing::Dense, dur);
        assert_eq!(
            (adaptive.digest, adaptive.events, adaptive.goodput_bytes),
            (dense.digest, dense.events, dense.goodput_bytes),
            "pacing is an engine knob, not a physics knob"
        );
        assert_eq!(dense.epochs_skipped, 0);
        assert!(
            adaptive.epochs_skipped > 0,
            "the quiet tail must skip: {adaptive:?}"
        );
        assert!(adaptive.epochs < dense.epochs);
        assert_eq!(adaptive.dense_epochs(), dense.epochs);
        // Budget spent: every ring flow completed its full burst.
        assert_eq!(
            adaptive.goodput_bytes,
            u64::from(16 * BURST_MSGS) * 64 * 1024
        );
    }
}
