//! Figure 6 — end-to-end latency of a latency-sensitive service: RDMA vs
//! TCP.
//!
//! The paper's service has ~350 Mb/s per server of bursty query/response
//! traffic with a many-to-one incast pattern, on a fabric that is not
//! bandwidth-bottlenecked; half the servers ran TCP, half RDMA. The
//! measured 99th percentiles: **RDMA ≈ 90 µs vs TCP ≈ 700 µs**, with TCP
//! spiking to milliseconds and RDMA's 99.9th at only ≈ 200 µs — because
//! RDMA "eliminated packet drops and kernel stack overhead" while
//! changing neither the traffic nor the network.

use rocescale_monitor::Percentiles;
use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_tcp::TcpApp;

use crate::cluster::{ClusterBuilder, ServerId, ServerKind};

/// Latency distribution summary (µs).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Samples collected.
    pub samples: usize,
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl LatencySummary {
    fn from(ps: &[u64]) -> LatencySummary {
        let mut p = Percentiles::from_samples(ps);
        let us = |v: Option<u64>| v.map_or(0.0, |v| v as f64 / 1e6);
        LatencySummary {
            samples: p.count(),
            p50_us: us(p.p50()),
            p99_us: us(p.p99()),
            p999_us: us(p.p999()),
            max_us: us(p.max()),
        }
    }
}

/// Result of the Figure 6 comparison.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// RDMA half of the fleet.
    pub rdma: LatencySummary,
    /// TCP half of the fleet.
    pub tcp: LatencySummary,
    /// Lossless drops (must be zero).
    pub lossless_drops: u64,
    /// Raw RDMA RTT samples, ps (for CDF rendering).
    pub rdma_samples_ps: Vec<u64>,
    /// Raw TCP RTT samples, ps.
    pub tcp_samples_ps: Vec<u64>,
}

/// Run the service for `dur`: a 4-rack cluster, alternating RDMA/TCP
/// servers, each front-end fanning a 512-byte query to `fanin` backends
/// of its own kind every `interval` and measuring time to each
/// `resp_len`-byte response.
pub fn run(dur: SimTime, fanin: usize, resp_len: u32, interval: SimTime) -> Fig6Result {
    let mut c = ClusterBuilder::two_tier(4, 8)
        .server_kind(|i| {
            if i % 2 == 0 {
                ServerKind::Rdma
            } else {
                ServerKind::Tcp
            }
        })
        .seed(17)
        .build();

    let install_rdma = |c: &mut crate::cluster::Cluster, fronts: &[ServerId]| {
        for (fi, f) in fronts.iter().enumerate() {
            let mut qps = Vec::new();
            // Backends: the next `fanin` same-kind servers (wrapping),
            // spread across racks.
            for k in 1..=fanin {
                let b = fronts[(fi + k) % fronts.len()];
                let (qf, _qb) = c.connect_qp(
                    *f,
                    b,
                    (9000 + fi * 31 + k) as u16,
                    QpApp::None,
                    QpApp::Echo {
                        reply_len: resp_len,
                    },
                );
                qps.push(qf);
            }
            c.rdma_mut(*f).set_host_app(rocescale_nic::HostApp::Fanout {
                qps,
                interval,
                query_len: 512,
                start_at: SimTime::from_micros(50 + 13 * fi as u64),
            });
        }
    };
    let rdma_servers = c.servers_of_kind(ServerKind::Rdma);
    install_rdma(&mut c, &rdma_servers);

    // TCP side: same shape, Pinger per connection approximates the
    // fan-out (each front-end queries its backends on staggered periods).
    let tcp_servers = c.servers_of_kind(ServerKind::Tcp);
    for (fi, f) in tcp_servers.iter().enumerate() {
        for k in 1..=fanin {
            let b = tcp_servers[(fi + k) % tcp_servers.len()];
            c.connect_tcp(
                *f,
                b,
                TcpApp::Pinger {
                    payload: 512,
                    interval,
                    start_at: SimTime::from_micros(50 + 13 * fi as u64 + k as u64),
                },
                TcpApp::Echo {
                    reply_len: resp_len,
                },
            );
        }
    }

    c.run_until(dur);
    let rdma_rtts = c.take_rdma_rtts();
    let tcp_rtts = c.take_tcp_rtts();
    Fig6Result {
        rdma: LatencySummary::from(&rdma_rtts),
        tcp: LatencySummary::from(&tcp_rtts),
        lossless_drops: c.lossless_drops(),
        rdma_samples_ps: rdma_rtts,
        tcp_samples_ps: tcp_rtts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6's shape: same service, same fabric — RDMA's p99 is many
    /// times lower than TCP's, and RDMA's p99.9 is still below TCP's p99.
    #[test]
    fn rdma_tail_beats_tcp_tail() {
        let r = run(
            SimTime::from_millis(60),
            4,
            16 * 1024,
            SimTime::from_millis(2),
        );
        assert!(r.rdma.samples > 200, "rdma samples: {}", r.rdma.samples);
        assert!(r.tcp.samples > 200, "tcp samples: {}", r.tcp.samples);
        assert_eq!(r.lossless_drops, 0);
        assert!(
            r.tcp.p99_us > 3.0 * r.rdma.p99_us,
            "tcp p99 {} must dwarf rdma p99 {}",
            r.tcp.p99_us,
            r.rdma.p99_us
        );
        assert!(
            r.rdma.p999_us < r.tcp.p99_us,
            "paper: RDMA p99.9 ({}) below TCP p99 ({})",
            r.rdma.p999_us,
            r.tcp.p99_us
        );
        // Order-of-magnitude sanity vs the paper's axes.
        assert!(r.rdma.p99_us < 300.0, "rdma p99 {}", r.rdma.p99_us);
        assert!(r.tcp.p99_us > 50.0, "tcp p99 {}", r.tcp.p99_us);
    }
}
