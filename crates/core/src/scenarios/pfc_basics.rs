//! Figure 2 — PFC mechanics: XOFF/XON prevents buffer overflow.
//!
//! A 4:1 incast into one server. With PFC, the switch pauses the senders
//! and *nothing* is dropped; without PFC (all classes lossy) the same
//! burst overflows the threshold and drops.

use rocescale_nic::QpApp;
use rocescale_sim::SimTime;
use rocescale_topology::Tier;

use crate::cluster::{ClusterBuilder, ServerId};
use crate::instrument::InstrumentationProfile;
use crate::profiles::{FabricProfile, TransportProfile};
use crate::scenarios::gbps;

/// Result of one arm of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct PfcBasicsResult {
    /// Was PFC enabled?
    pub pfc: bool,
    /// XOFF pause frames the ToR sent.
    pub pauses: u64,
    /// Resume (XON) frames the ToR sent.
    pub resumes: u64,
    /// Packets dropped in the fabric.
    pub drops: u64,
    /// Receiver goodput, Gb/s.
    pub goodput_gbps: f64,
}

/// Run one arm: `fanin` senders saturate one receiver for `dur`.
pub fn run(pfc: bool, fanin: u32, dur: SimTime) -> PfcBasicsResult {
    run_traced(pfc, fanin, dur, InstrumentationProfile::paper_default())
}

/// [`run`] under an explicit observation setup — e.g. a `--trace-out`
/// JSONL sink streaming the incast's hops, pauses and queue samples.
/// Instrumentation is observation-only, so every arm's numbers are
/// identical to the untraced run.
pub fn run_traced(
    pfc: bool,
    fanin: u32,
    dur: SimTime,
    instr: InstrumentationProfile,
) -> PfcBasicsResult {
    let mut c = ClusterBuilder::single_tor(fanin + 1)
        .fabric(FabricProfile::paper_default().pfc(pfc))
        // Raw PFC behaviour, no rate control assist.
        .transport(TransportProfile::paper_default().dcqcn(false))
        .instrumentation(instr)
        .build();
    let dst = ServerId(0);
    for i in 1..=fanin {
        c.connect_qp(
            ServerId(i as usize),
            dst,
            5000 + i as u16,
            QpApp::Saturate {
                msg_len: 1 << 20,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    c.run_until(dur);
    let tor = c.switches_of_tier(Tier::Tor)[0];
    let sw = c.switch(tor);
    PfcBasicsResult {
        pfc,
        pauses: sw.stats.total_pause_tx(),
        resumes: sw.stats.resume_tx.iter().sum(),
        drops: sw.stats.total_drops(),
        goodput_gbps: gbps(c.rdma(dst).total_goodput_bytes(), dur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfc_pauses_instead_of_dropping() {
        let dur = SimTime::from_millis(5);
        let with = run(true, 4, dur);
        assert!(with.pauses > 0, "incast must trigger XOFF");
        assert!(with.resumes > 0, "drain must trigger XON");
        assert_eq!(with.drops, 0, "lossless: zero drops");
        assert!(with.goodput_gbps > 25.0, "receiver link stays busy");

        let without = run(false, 4, dur);
        assert!(without.drops > 0, "lossy: congestion drops");
        assert_eq!(without.pauses, 0, "no PFC for lossy classes");
    }
}
