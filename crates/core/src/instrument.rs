//! The fourth configuration profile: observation.
//!
//! [`FabricProfile`], [`TransportProfile`] and [`FaultProfile`] cover
//! what the fabric *does*; [`InstrumentationProfile`] covers how a run
//! is *observed* — the telemetry hub, the dispatch-digest mode, the
//! dispatch profiler, and the streaming trace sink. These four knobs
//! were previously loose `ClusterBuilder` setters that grew one at a
//! time (PRs 2, 5, and the engine work); adding the trace sink as a
//! fifth loose setter would have continued the sprawl, so they collapse
//! into one coherent group with the same shape as the other profiles:
//! `paper_default()` plus chainable setters. The old builder setters
//! remain as thin shims (see [`crate::ClusterBuilder::telemetry`]),
//! mirroring the `dcqcn(bool)` → `CcKind` migration.
//!
//! Everything in this profile is observation-only: any combination of
//! settings dispatches the exact golden event trace (tier-1 tests pin
//! this for the hub, the profiler, and the sink individually).
//!
//! [`FabricProfile`]: crate::FabricProfile
//! [`TransportProfile`]: crate::TransportProfile
//! [`FaultProfile`]: crate::FaultProfile

use rocescale_monitor::{JsonlSink, MetricsHub, TraceFilter, TraceSink};
use rocescale_sim::{DigestMode, ProfileMode};

/// How a cluster run is observed: telemetry hub, dispatch digest,
/// dispatch profiler, streaming trace sink.
///
/// Not `Clone`: an attached sink is an exclusive resource (a file
/// handle, a test buffer); build one profile per cluster.
pub struct InstrumentationProfile {
    /// The telemetry hub every device registers its instruments on.
    /// Disabled by default — a disabled hub costs nothing.
    pub telemetry: MetricsHub,
    /// Dispatch-digest mode (default: on, so golden-trace checks work).
    pub digest: DigestMode,
    /// Dispatch-profiler mode (default: off).
    pub profile: ProfileMode,
    /// Streaming trace sink and its record filter, if attached.
    /// Attaching a sink implies an enabled hub: the builder upgrades a
    /// disabled `telemetry` to [`MetricsHub::enabled`] at build time so
    /// the sink actually sees records.
    pub sink: Option<(Box<dyn TraceSink>, TraceFilter)>,
}

impl InstrumentationProfile {
    /// The default observation setup (what every scenario before this
    /// profile existed got implicitly): no telemetry hub, digest on,
    /// profiler off, no trace sink.
    pub fn paper_default() -> InstrumentationProfile {
        InstrumentationProfile {
            telemetry: MetricsHub::disabled(),
            digest: DigestMode::default(),
            profile: ProfileMode::default(),
            sink: None,
        }
    }

    /// Attach a telemetry hub.
    pub fn telemetry(mut self, hub: MetricsHub) -> Self {
        self.telemetry = hub;
        self
    }

    /// Set the dispatch-digest mode.
    pub fn digest(mut self, d: DigestMode) -> Self {
        self.digest = d;
        self
    }

    /// Set the dispatch-profiler mode.
    pub fn profiler(mut self, p: ProfileMode) -> Self {
        self.profile = p;
        self
    }

    /// Attach a streaming trace sink receiving every record class
    /// (events, hops, queue samples, rate points).
    pub fn trace_sink(self, sink: impl TraceSink + 'static) -> Self {
        self.trace_sink_filtered(sink, TraceFilter::all())
    }

    /// Attach a streaming trace sink with an explicit record filter.
    pub fn trace_sink_filtered(mut self, sink: impl TraceSink + 'static, f: TraceFilter) -> Self {
        self.sink = Some((Box::new(sink), f));
        self
    }

    /// Attach a [`JsonlSink`] streaming to a file at `path` — the
    /// `--trace-out` convenience.
    pub fn trace_jsonl(self, path: &str) -> std::io::Result<Self> {
        Ok(self.trace_sink(JsonlSink::create(path)?))
    }
}

impl Default for InstrumentationProfile {
    fn default() -> InstrumentationProfile {
        InstrumentationProfile::paper_default()
    }
}

impl std::fmt::Debug for InstrumentationProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstrumentationProfile")
            .field("telemetry", &self.telemetry)
            .field("digest", &self.digest)
            .field("profile", &self.profile)
            .field("sink", &self.sink.as_ref().map(|(_, filter)| filter))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocescale_monitor::MemorySink;

    #[test]
    fn paper_default_observes_nothing_but_digests() {
        let i = InstrumentationProfile::paper_default();
        assert!(!i.telemetry.is_enabled());
        assert_eq!(i.digest, DigestMode::On);
        assert_eq!(i.profile, ProfileMode::Off);
        assert!(i.sink.is_none());
    }

    #[test]
    fn setters_chain() {
        let i = InstrumentationProfile::paper_default()
            .telemetry(MetricsHub::enabled())
            .digest(DigestMode::Off)
            .profiler(ProfileMode::On)
            .trace_sink_filtered(MemorySink::new(), TraceFilter::no_hops());
        assert!(i.telemetry.is_enabled());
        assert_eq!(i.digest, DigestMode::Off);
        assert_eq!(i.profile, ProfileMode::On);
        let (_, filter) = i.sink.as_ref().unwrap();
        assert!(!filter.hops && filter.events);
    }

    #[test]
    fn profile_is_send() {
        // The fleet runner builds clusters (profile included) inside
        // worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<InstrumentationProfile>();
    }
}
