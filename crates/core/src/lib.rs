//! The `rocescale` public API: build a Clos datacenter running RoCEv2 with
//! the paper's full mechanism stack, drive workloads over it, and read the
//! same counters the paper's monitoring systems read.
//!
//! Three layers:
//!
//! * [`cluster`] — [`ClusterBuilder`]/[`Cluster`]: instantiates a
//!   [`rocescale_topology::Topology`] into simulated switches and hosts,
//!   wires routes/ARP/MAC state, and exposes workload installation
//!   (QP pairs, saturating senders, incast fan-outs, Pingmesh probers,
//!   TCP connections) plus fleet-wide counter aggregation.
//! * [`deployment`] — the paper's staged onboarding (§6.1): lab → test
//!   cluster → PFC at ToR only → Podset → up to Spine, expressed as which
//!   tiers run lossless classes.
//! * [`scenarios`] — one entry per paper experiment (§4.1 livelock,
//!   Figure 4 deadlock, Figure 5/9 storms, §4.4 slow receiver, Figures
//!   6–8 performance, Figure 10 buffer misconfiguration, §1 CPU
//!   overhead), each returning a structured result that the `bench`
//!   harness prints and the integration tests assert on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod deployment;
pub mod detect;
pub mod instrument;
pub mod profiles;
pub mod scenarios;
pub mod sharded;
pub mod sweep;

pub use cluster::{Cluster, ClusterBuilder, PfcMode, ServerId, ServerKind};
pub use deployment::DeploymentStage;
pub use detect::{DeadlockProbe, ProbeLink};
pub use instrument::InstrumentationProfile;
pub use profiles::{ExecutionProfile, FabricProfile, FaultProfile, ScriptAction, TransportProfile};
pub use rocescale_cc::CcKind;
pub use sharded::ShardedCluster;
pub use sweep::{SweepAxis, SweepJob, SweepPoint, SweepSpec, SweepVariant};
