//! Sharded cluster execution: per-pod worker shards behind the
//! conservative exchange.
//!
//! [`ShardedCluster`] is the multi-world sibling of
//! [`Cluster`](crate::Cluster): the same devices, built by the same
//! [`ClusterBuilder`](crate::ClusterBuilder) factory, but distributed
//! across per-pod [`rocescale_sim::World`]s that a
//! [`rocescale_sim::ShardedWorld`] advances in lookahead epochs. Three
//! determinism guarantees anchor it (pinned by
//! `tests/shard_determinism.rs`):
//!
//! 1. One effective shard (a `SingleThread` profile, `shards: 1`, or a
//!    single-pod topology the partition collapses) dispatches the
//!    byte-identical event stream — and golden digest — of
//!    [`Cluster`](crate::Cluster).
//! 2. With N ≥ 2 shards, serial and threaded epoch execution agree
//!    byte-for-byte: same digest, same event counts, same merged
//!    counter snapshot.
//! 3. The digest folds per-shard digests in fixed shard order, so a
//!    sharded run is replayable and pinnable like any other.
//!
//! Telemetry in this mode is *bank-per-shard*: each shard's devices
//! register on their own [`MetricsHub`], and
//! [`ShardedCluster::counters_snapshot`] merges the banks by name
//! (summing duplicates) into one deterministic fleet view. Time-series
//! sampling, streaming trace sinks, and the live deadlock probe remain
//! single-thread-only observation features.

use std::collections::BTreeMap;

use rocescale_monitor::MetricsHub;
use rocescale_nic::{QpApp, QpHandle, RdmaHost};
use rocescale_sim::{ShardedWorld, SimTime, World};
use rocescale_switch::{DropReason, Switch};
use rocescale_topology::{ClosSpec, Partition, Tier, Topology};

use crate::cluster::{BuiltParts, ServerId, ServerInfo, ServerKind, SwitchInfo};

/// A running sharded cluster: per-pod worlds behind the conservative
/// exchange, plus the index structures to reach every device.
pub struct ShardedCluster {
    sharded: ShardedWorld,
    topo: Topology,
    spec: ClosSpec,
    partition: Partition,
    servers: Vec<ServerInfo>,
    switches: Vec<SwitchInfo>,
    hubs: Vec<MetricsHub>,
}

impl ShardedCluster {
    pub(crate) fn from_parts(parts: BuiltParts, spec: ClosSpec) -> ShardedCluster {
        let BuiltParts {
            worlds,
            partition,
            topo,
            servers,
            switches,
            hubs,
        } = parts;
        ShardedCluster {
            sharded: ShardedWorld::new(worlds),
            topo,
            spec,
            partition,
            servers,
            switches,
            hubs,
        }
    }

    // ---- shape ----

    /// The Clos spec this cluster was built from.
    pub fn spec(&self) -> &ClosSpec {
        &self.spec
    }

    /// The topology description.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The pod-granular partition plan in force.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of worker shards (1 for a single-pod topology).
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Borrow shard `s`'s world (for per-shard engine stats).
    pub fn world(&self, s: usize) -> &World {
        self.sharded.world(s)
    }

    /// Mutably borrow shard `s`'s world.
    pub fn world_mut(&mut self, s: usize) -> &mut World {
        self.sharded.world_mut(s)
    }

    /// Run epochs serially even with multiple shards (differential
    /// testing: results are byte-identical either way).
    pub fn set_threaded(&mut self, threaded: bool) {
        self.sharded.set_threaded(threaded);
    }

    // ---- servers ----

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// All server ids.
    pub fn all_servers(&self) -> Vec<ServerId> {
        (0..self.servers.len()).map(ServerId).collect()
    }

    /// The servers under `tor` (pod-relative index), in port order.
    pub fn servers_under(&self, pod: u32, tor: u32) -> Vec<ServerId> {
        let subnet = rocescale_topology::tor_subnet(pod, tor);
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ip & 0xffff_ff00 == subnet)
            .map(|(i, _)| ServerId(i))
            .collect()
    }

    /// A server's IP.
    pub fn server_ip(&self, id: ServerId) -> u32 {
        self.servers[id.0].ip
    }

    /// A server's pod.
    pub fn server_pod(&self, id: ServerId) -> u32 {
        self.servers[id.0].pod
    }

    /// The shard that owns a server.
    pub fn server_shard(&self, id: ServerId) -> u32 {
        self.servers[id.0].shard
    }

    /// Two servers share a ToR?
    pub fn same_tor(&self, a: ServerId, b: ServerId) -> bool {
        self.servers[a.0].tor_topo_idx == self.servers[b.0].tor_topo_idx
    }

    /// Borrow an RDMA server.
    pub fn rdma(&self, id: ServerId) -> &RdmaHost {
        let s = &self.servers[id.0];
        assert_eq!(s.kind, ServerKind::Rdma);
        self.sharded.world(s.shard as usize).node::<RdmaHost>(s.sim)
    }

    /// Mutably borrow an RDMA server.
    pub fn rdma_mut(&mut self, id: ServerId) -> &mut RdmaHost {
        let s = &self.servers[id.0];
        assert_eq!(s.kind, ServerKind::Rdma);
        let (shard, sim) = (s.shard, s.sim);
        self.sharded
            .world_mut(shard as usize)
            .node_mut::<RdmaHost>(sim)
    }

    /// Create a QP pair between two RDMA servers — shard-oblivious: the
    /// endpoints may live in different worlds, and their traffic rides
    /// the exchange.
    pub fn connect_qp(
        &mut self,
        a: ServerId,
        b: ServerId,
        udp_src: u16,
        app_a: QpApp,
        app_b: QpApp,
    ) -> (QpHandle, QpHandle) {
        let a_ip = self.server_ip(a);
        let b_ip = self.server_ip(b);
        let a_qpn = self.rdma(a).qp_count() as u32;
        let b_qpn = self.rdma(b).qp_count() as u32;
        let ha = self.rdma_mut(a).add_qp(b_ip, b_qpn, udp_src, app_a);
        let hb = self.rdma_mut(b).add_qp(a_ip, a_qpn, udp_src, app_b);
        (ha, hb)
    }

    // ---- switches ----

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Borrow switch `i` (topology order: ToRs and leaves pod-major,
    /// then spines).
    pub fn switch(&self, i: usize) -> &Switch {
        let s = &self.switches[i];
        self.sharded.world(s.shard as usize).node::<Switch>(s.sim)
    }

    /// A switch's display name.
    pub fn switch_name(&self, i: usize) -> &str {
        &self.switches[i].name
    }

    /// Indices of switches of a tier.
    pub fn switches_of_tier(&self, tier: Tier) -> Vec<usize> {
        self.switches
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tier == tier)
            .map(|(i, _)| i)
            .collect()
    }

    // ---- running ----

    /// Advance every shard to `t` through conservative-lookahead epochs.
    pub fn run_until(&mut self, t: SimTime) {
        self.sharded.run_until(t);
    }

    /// Run for `ms` more milliseconds of simulated time.
    pub fn run_for_millis(&mut self, ms: u64) {
        let t = self.now() + SimTime::from_millis(ms);
        self.run_until(t);
    }

    /// Current simulated horizon (every shard has advanced at least this
    /// far).
    pub fn now(&self) -> SimTime {
        self.sharded.now()
    }

    // ---- determinism & progress ----

    /// Global dispatch digest: per-shard digests folded in shard order.
    pub fn dispatch_digest(&self) -> u64 {
        self.sharded.dispatch_digest()
    }

    /// Total events dispatched across all shards.
    pub fn events_processed(&self) -> u64 {
        self.sharded.events_processed()
    }

    /// Exchange epochs executed (0 until the first multi-shard run).
    pub fn exchange_epochs(&self) -> u64 {
        self.sharded.epochs()
    }

    /// Boundary messages carried across shards so far.
    pub fn boundary_messages(&self) -> u64 {
        self.sharded.boundary_messages()
    }

    /// Per-shard wall-clock spent inside `World::run_until`, in
    /// nanoseconds (index = shard).
    pub fn shard_wall_nanos(&self) -> &[u64] {
        self.sharded.shard_wall_nanos()
    }

    /// The conservative lookahead (min cross-shard propagation delay);
    /// `None` with one shard.
    pub fn lookahead(&self) -> Option<SimTime> {
        self.sharded.lookahead()
    }

    // ---- fleet-wide monitoring ----

    /// Total XOFF pause frames sent by all switches.
    pub fn total_switch_pause_tx(&self) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.total_pause_tx())
            .sum()
    }

    /// Total drops of a given reason across switches.
    pub fn total_drops_of(&self, reason: DropReason) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.drops_of(reason))
            .sum()
    }

    /// Drops that must be zero in a healthy lossless fabric.
    pub fn lossless_drops(&self) -> u64 {
        self.total_drops_of(DropReason::LosslessOverflow)
    }

    /// Sum of receiver-side RDMA goodput bytes across all servers.
    pub fn total_rdma_goodput(&self) -> u64 {
        self.servers
            .iter()
            .filter(|s| s.kind == ServerKind::Rdma)
            .map(|s| {
                self.sharded
                    .world(s.shard as usize)
                    .node::<RdmaHost>(s.sim)
                    .total_goodput_bytes()
            })
            .sum()
    }

    /// Aggregate flow-cache hits and misses across every switch.
    pub fn flow_cache_totals(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for i in 0..self.switches.len() {
            let st = self.switch(i).flow_cache_stats();
            hits += st.hits;
            misses += st.misses;
        }
        (hits, misses)
    }

    /// Shard `s`'s telemetry bank (disabled unless the builder attached
    /// an enabled hub).
    pub fn hub(&self, s: usize) -> &MetricsHub {
        &self.hubs[s]
    }

    /// Fleet counter snapshot: every shard bank's counters merged by
    /// name, duplicates summed, name-sorted — deterministic regardless
    /// of shard count or threading.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for h in &self.hubs {
            for (name, v) in h.counters_snapshot() {
                *merged.entry(name).or_insert(0) += v;
            }
        }
        merged.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterBuilder, ExecutionProfile};
    use rocescale_sim::SimTime;

    fn two_pods(seed: u64) -> ClusterBuilder {
        ClusterBuilder::new(ClosSpec::uniform_40g(2, 1, 2, 2, 2)).seed(seed)
    }

    fn saturate() -> QpApp {
        QpApp::Saturate {
            msg_len: 128 * 1024,
            inflight: 1,
        }
    }

    #[test]
    fn sharded_cluster_carries_cross_pod_traffic() {
        let mut c = two_pods(3)
            .execution(ExecutionProfile::Sharded { shards: 2 })
            .build_sharded();
        assert_eq!(c.shard_count(), 2);
        let ids = c.all_servers();
        let a = *ids.iter().find(|s| c.server_pod(**s) == 0).unwrap();
        let b = *ids.iter().find(|s| c.server_pod(**s) == 1).unwrap();
        assert_ne!(c.server_shard(a), c.server_shard(b));
        c.connect_qp(a, b, 6000, saturate(), QpApp::None);
        c.run_for_millis(2);
        assert!(
            c.total_rdma_goodput() >= 128 * 1024,
            "cross-pod flow must complete through the exchange: {}",
            c.total_rdma_goodput()
        );
        assert!(
            c.exchange_epochs() > 0,
            "multi-shard runs advance in epochs"
        );
        assert!(c.boundary_messages() > 0, "the flow crosses the boundary");
        assert_eq!(c.lossless_drops(), 0);
        assert!(c.lookahead().unwrap() > SimTime::ZERO);
    }

    #[test]
    fn single_pod_collapses_to_the_plain_cluster() {
        // two_tier topologies have one pod, so any shard request
        // collapses to one shard — and the event stream (digest, event
        // count) is byte-identical to `build()`'s. This is the guarantee
        // that re-pins the golden trace under `Sharded { shards: N }`.
        let drive = |mut c: crate::Cluster| {
            let ids = c.all_servers();
            c.connect_qp(ids[1], ids[0], 5000, saturate(), QpApp::None);
            c.run_for_millis(1);
            (c.world.dispatch_digest(), c.world.events_processed())
        };
        let single = drive(ClusterBuilder::two_tier(2, 3).seed(9).build());

        let mut s = ClusterBuilder::two_tier(2, 3)
            .seed(9)
            .execution(ExecutionProfile::Sharded { shards: 4 })
            .build_sharded();
        assert_eq!(s.shard_count(), 1);
        let ids = s.all_servers();
        s.connect_qp(ids[1], ids[0], 5000, saturate(), QpApp::None);
        s.run_for_millis(1);
        assert_eq!(s.exchange_epochs(), 0, "one shard never runs epochs");
        assert_eq!((s.dispatch_digest(), s.events_processed()), single);
    }

    #[test]
    fn serial_and_threaded_epochs_agree_with_merged_counters() {
        let run = |threaded: bool| {
            let mut c = two_pods(7)
                .telemetry(MetricsHub::enabled())
                .execution(ExecutionProfile::Sharded { shards: 2 })
                .build_sharded();
            c.set_threaded(threaded);
            let ids = c.all_servers();
            let a = *ids.iter().find(|s| c.server_pod(**s) == 0).unwrap();
            let b = *ids.iter().find(|s| c.server_pod(**s) == 1).unwrap();
            c.connect_qp(a, b, 6000, saturate(), QpApp::None);
            c.run_until(SimTime::from_micros(800));
            (
                c.dispatch_digest(),
                c.events_processed(),
                c.exchange_epochs(),
                c.boundary_messages(),
                c.counters_snapshot(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
