//! Sharded cluster execution: per-pod worker shards behind the
//! conservative exchange.
//!
//! [`ShardedCluster`] is the multi-world sibling of
//! [`Cluster`](crate::Cluster): the same devices, built by the same
//! [`ClusterBuilder`](crate::ClusterBuilder) factory, but distributed
//! across per-pod [`rocescale_sim::World`]s that a
//! [`rocescale_sim::ShardedWorld`] advances in lookahead epochs. Three
//! determinism guarantees anchor it (pinned by
//! `tests/shard_determinism.rs`):
//!
//! 1. One effective shard (a `SingleThread` profile, `shards: 1`, or a
//!    single-pod topology the partition collapses) dispatches the
//!    byte-identical event stream — and golden digest — of
//!    [`Cluster`](crate::Cluster).
//! 2. With N ≥ 2 shards, serial and threaded epoch execution agree
//!    byte-for-byte: same digest, same event counts, same merged
//!    counter snapshot.
//! 3. The digest folds per-shard digests in fixed shard order, so a
//!    sharded run is replayable and pinnable like any other.
//!
//! Every observation feature runs *bank-per-shard* here: each shard's
//! devices register counters, gauges, time series and trace streams on
//! their own [`MetricsHub`];
//! [`ShardedCluster::counters_snapshot`] merges the banks by name
//! (summing duplicates) into one deterministic fleet view, and a
//! configured [`TraceSink`] receives every shard's records merged in
//! `(time, shard, emission)` order with a `shard` tag per line. The live
//! [`DeadlockProbe`] reads the barrier-merged pause/occupancy view
//! across all shard worlds at each sampling epoch, and the Pingmesh
//! report mirrors each prober's RTTs into its owning shard's bank.
//! Serial and threaded execution produce byte-identical exports: within
//! an epoch each world writes only to its own bank, and the merge order
//! is a pure function of the records.

use std::collections::BTreeMap;

use rocescale_monitor::{MemorySink, MetricsHub, Pingmesh, QueueSample, StreamRecord, TraceSink};
use rocescale_nic::{QpApp, QpHandle, RdmaHost};
use rocescale_packet::Priority;
use rocescale_sim::{EpochPacing, ShardStats, ShardedWorld, SimTime, World};
use rocescale_switch::{DropReason, Switch};
use rocescale_topology::{ClosSpec, Partition, Tier, Topology};

use crate::cluster::{
    probe_wiring, BuiltParts, ClusterTele, ServerId, ServerInfo, ServerKind, SwitchInfo,
};
use crate::detect::DeadlockProbe;

/// One shard's observation bank: fleet-level gauge ids and trace scopes
/// registered on that shard's hub, over the switches the shard owns.
struct ShardObs {
    tele: ClusterTele,
    /// Global switch indices owned by this shard, parallel to the
    /// `tele` vectors.
    switch_idx: Vec<usize>,
}

/// A running sharded cluster: per-pod worlds behind the conservative
/// exchange, plus the index structures to reach every device.
pub struct ShardedCluster {
    sharded: ShardedWorld,
    topo: Topology,
    spec: ClosSpec,
    partition: Partition,
    servers: Vec<ServerInfo>,
    switches: Vec<SwitchInfo>,
    hubs: Vec<MetricsHub>,
    obs: Vec<ShardObs>,
    deadlock: DeadlockProbe,
    /// Per-shard trace banks (parallel to `hubs`) and the caller's sink
    /// they merge into; both empty/none unless a sink was configured on
    /// a multi-shard build.
    banks: Vec<MemorySink>,
    sink: Option<Box<dyn TraceSink>>,
}

impl ShardedCluster {
    pub(crate) fn from_parts(parts: BuiltParts, spec: ClosSpec) -> ShardedCluster {
        let BuiltParts {
            worlds,
            partition,
            topo,
            servers,
            switches,
            hubs,
            banks,
            sink,
        } = parts;
        let obs = hubs
            .iter()
            .enumerate()
            .map(|(s, hub)| {
                let switch_idx: Vec<usize> = switches
                    .iter()
                    .enumerate()
                    .filter(|(_, sw)| sw.shard == s as u32)
                    .map(|(i, _)| i)
                    .collect();
                let owned: Vec<SwitchInfo> =
                    switch_idx.iter().map(|&i| switches[i].clone()).collect();
                ShardObs {
                    tele: ClusterTele::register(hub, &owned),
                    switch_idx,
                }
            })
            .collect();
        let (probe_switches, probe_links) = probe_wiring(&topo, &switches);
        let deadlock = DeadlockProbe::new_sharded(
            &hubs[0],
            probe_switches,
            probe_links,
            vec![Priority::new(3), Priority::new(4)],
            3,
        );
        ShardedCluster {
            sharded: ShardedWorld::new(worlds),
            topo,
            spec,
            partition,
            servers,
            switches,
            hubs,
            obs,
            deadlock,
            banks,
            sink,
        }
    }

    // ---- shape ----

    /// The Clos spec this cluster was built from.
    pub fn spec(&self) -> &ClosSpec {
        &self.spec
    }

    /// The topology description.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The pod-granular partition plan in force.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of worker shards (1 for a single-pod topology).
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Borrow shard `s`'s world (for per-shard engine stats).
    pub fn world(&self, s: usize) -> &World {
        self.sharded.world(s)
    }

    /// Mutably borrow shard `s`'s world.
    pub fn world_mut(&mut self, s: usize) -> &mut World {
        self.sharded.world_mut(s)
    }

    /// Run epochs serially even with multiple shards (differential
    /// testing: results are byte-identical either way).
    pub fn set_threaded(&mut self, threaded: bool) {
        self.sharded.set_threaded(threaded);
    }

    /// Choose dense grid pacing or adaptive epoch skipping (the
    /// default). A differential knob like `set_threaded`: both modes
    /// dispatch byte-identical event streams.
    pub fn set_pacing(&mut self, pacing: EpochPacing) {
        self.sharded.set_pacing(pacing);
    }

    /// The active pacing mode.
    pub fn pacing(&self) -> EpochPacing {
        self.sharded.pacing()
    }

    // ---- servers ----

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// All server ids.
    pub fn all_servers(&self) -> Vec<ServerId> {
        (0..self.servers.len()).map(ServerId).collect()
    }

    /// Server ids of a given kind.
    pub fn servers_of_kind(&self, kind: ServerKind) -> Vec<ServerId> {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| ServerId(i))
            .collect()
    }

    /// The servers under `tor` (pod-relative index), in port order.
    pub fn servers_under(&self, pod: u32, tor: u32) -> Vec<ServerId> {
        let subnet = rocescale_topology::tor_subnet(pod, tor);
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ip & 0xffff_ff00 == subnet)
            .map(|(i, _)| ServerId(i))
            .collect()
    }

    /// A server's IP.
    pub fn server_ip(&self, id: ServerId) -> u32 {
        self.servers[id.0].ip
    }

    /// A server's pod.
    pub fn server_pod(&self, id: ServerId) -> u32 {
        self.servers[id.0].pod
    }

    /// The shard that owns a server.
    pub fn server_shard(&self, id: ServerId) -> u32 {
        self.servers[id.0].shard
    }

    /// Two servers share a ToR?
    pub fn same_tor(&self, a: ServerId, b: ServerId) -> bool {
        self.servers[a.0].tor_topo_idx == self.servers[b.0].tor_topo_idx
    }

    /// Borrow an RDMA server.
    pub fn rdma(&self, id: ServerId) -> &RdmaHost {
        let s = &self.servers[id.0];
        assert_eq!(s.kind, ServerKind::Rdma);
        self.sharded.world(s.shard as usize).node::<RdmaHost>(s.sim)
    }

    /// Mutably borrow an RDMA server.
    pub fn rdma_mut(&mut self, id: ServerId) -> &mut RdmaHost {
        let s = &self.servers[id.0];
        assert_eq!(s.kind, ServerKind::Rdma);
        let (shard, sim) = (s.shard, s.sim);
        self.sharded
            .world_mut(shard as usize)
            .node_mut::<RdmaHost>(sim)
    }

    /// Create a QP pair between two RDMA servers — shard-oblivious: the
    /// endpoints may live in different worlds, and their traffic rides
    /// the exchange.
    pub fn connect_qp(
        &mut self,
        a: ServerId,
        b: ServerId,
        udp_src: u16,
        app_a: QpApp,
        app_b: QpApp,
    ) -> (QpHandle, QpHandle) {
        let a_ip = self.server_ip(a);
        let b_ip = self.server_ip(b);
        let a_qpn = self.rdma(a).qp_count() as u32;
        let b_qpn = self.rdma(b).qp_count() as u32;
        let ha = self.rdma_mut(a).add_qp(b_ip, b_qpn, udp_src, app_a);
        let hb = self.rdma_mut(b).add_qp(a_ip, a_qpn, udp_src, app_b);
        (ha, hb)
    }

    // ---- switches ----

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Borrow switch `i` (topology order: ToRs and leaves pod-major,
    /// then spines).
    pub fn switch(&self, i: usize) -> &Switch {
        let s = &self.switches[i];
        self.sharded.world(s.shard as usize).node::<Switch>(s.sim)
    }

    /// A switch's display name.
    pub fn switch_name(&self, i: usize) -> &str {
        &self.switches[i].name
    }

    /// Indices of switches of a tier.
    pub fn switches_of_tier(&self, tier: Tier) -> Vec<usize> {
        self.switches
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tier == tier)
            .map(|(i, _)| i)
            .collect()
    }

    // ---- running ----

    /// Advance every shard to `t` through conservative-lookahead epochs.
    ///
    /// With telemetry enabled the run is chunked at sample boundaries —
    /// exactly like [`Cluster::run_until`](crate::Cluster::run_until) —
    /// so every shard bank samples its time series on the same cadence,
    /// fleet gauges refresh, queue samples stream into each shard's
    /// bank, and the deadlock probe reads the barrier-merged
    /// pause/occupancy view across all shard worlds. Chunking never
    /// changes the physics: the dispatch digest is byte-identical with
    /// observation on or off, threaded or serial.
    pub fn run_until(&mut self, t: SimTime) {
        if self.hubs[0].is_enabled() {
            while let Some(ns) = self.hubs[0].next_sample_ps() {
                if ns >= t.as_ps() {
                    break;
                }
                self.sharded.run_until(SimTime(ns));
                self.publish_gauges();
                self.stream_queue_samples(ns);
                self.deadlock
                    .observe_merged(self.sharded.worlds(), SimTime(ns));
                for h in &self.hubs {
                    h.maybe_sample(ns);
                }
            }
        }
        self.sharded.run_until(t);
        // A run boundary is where readers expect the exported trace to
        // be complete: move every bank's records into the caller's sink
        // (multi-shard) or flush the directly attached sink (one shard).
        self.merge_trace_banks();
        for h in &self.hubs {
            h.flush_sink();
        }
    }

    /// Refresh each shard's fleet-level gauges (engine progress,
    /// per-switch lossless backlog) from live state. Called
    /// automatically at each sample boundary.
    pub fn publish_gauges(&self) {
        for (s, obs) in self.obs.iter().enumerate() {
            let hub = &self.hubs[s];
            if !hub.is_enabled() {
                continue;
            }
            let w = self.sharded.world(s);
            hub.set_gauge(obs.tele.engine_events, w.events_processed() as f64);
            let st = w.sched_stats();
            hub.set_gauge(
                obs.tele.engine_pending,
                (st.pushed - st.dispatched - st.cancelled) as f64,
            );
            for (k, &gi) in obs.switch_idx.iter().enumerate() {
                let backlog = self.switch(gi).lossless_backlog() as f64;
                hub.set_gauge(obs.tele.switch_backlog[k], backlog);
            }
        }
    }

    /// Stream one queue-depth sample per switch into its owning shard's
    /// bank at epoch boundary `ns` (no-op for shards without a
    /// queue-class sink).
    fn stream_queue_samples(&self, ns: u64) {
        for (s, obs) in self.obs.iter().enumerate() {
            let hub = &self.hubs[s];
            if !hub.streams_queues() {
                continue;
            }
            for (k, &gi) in obs.switch_idx.iter().enumerate() {
                let sw = self.switch(gi);
                hub.stream_queue(
                    ns,
                    obs.tele.switch_scopes[k],
                    QueueSample {
                        backlog_bytes: sw.lossless_backlog(),
                        max_port_bytes: sw.max_egress_depth(),
                        tx_pkts: sw.total_data_tx_pkts(),
                    },
                );
            }
        }
    }

    /// Drain every shard's trace bank into the caller's sink, merged in
    /// `(time, shard, emission order)` — a pure function of the records,
    /// so threaded and serial runs export byte-identical files. Each
    /// line carries its owning shard in the `shard` field. Records never
    /// interleave wrongly across successive calls: a chunk's records all
    /// precede the next chunk's in simulated time.
    fn merge_trace_banks(&mut self) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let mut all: Vec<(u64, u32, usize, rocescale_monitor::OwnedRecord)> = Vec::new();
        for (s, bank) in self.banks.iter().enumerate() {
            for (i, rec) in bank.take_records().into_iter().enumerate() {
                all.push((rec.t_ps, s as u32, i, rec));
            }
        }
        all.sort_by_key(|&(t, s, i, _)| (t, s, i));
        for (_, s, _, rec) in all {
            sink.write(&StreamRecord {
                t_ps: rec.t_ps,
                scope: &rec.scope,
                shard: Some(s),
                body: rec.body,
            });
        }
        sink.flush();
    }

    /// The live deadlock probe over the barrier-merged fleet view.
    /// Epochs run automatically at each telemetry sample boundary.
    pub fn deadlock_probe(&self) -> &DeadlockProbe {
        &self.deadlock
    }

    /// Force one deadlock-detection epoch right now against the merged
    /// pause/occupancy view. Returns the wait cycle found, if any.
    pub fn deadlock_observe_now(&mut self) -> Option<Vec<String>> {
        let now = self.sharded.now();
        self.deadlock.observe_merged(self.sharded.worlds(), now)
    }

    /// Run for `ms` more milliseconds of simulated time.
    pub fn run_for_millis(&mut self, ms: u64) {
        let t = self.now() + SimTime::from_millis(ms);
        self.run_until(t);
    }

    /// Current simulated horizon (every shard has advanced at least this
    /// far).
    pub fn now(&self) -> SimTime {
        self.sharded.now()
    }

    // ---- determinism & progress ----

    /// Global dispatch digest: per-shard digests folded in shard order.
    pub fn dispatch_digest(&self) -> u64 {
        self.sharded.dispatch_digest()
    }

    /// Total events dispatched across all shards.
    pub fn events_processed(&self) -> u64 {
        self.sharded.events_processed()
    }

    /// Exchange epochs executed (0 until the first multi-shard run).
    pub fn exchange_epochs(&self) -> u64 {
        self.sharded.epochs()
    }

    /// Grid windows adaptive pacing proved idle and jumped over (0 under
    /// dense pacing or one shard).
    pub fn epochs_skipped(&self) -> u64 {
        self.sharded.epochs_skipped()
    }

    /// Executed/skipped/boundary counters in one snapshot.
    pub fn shard_stats(&self) -> ShardStats {
        self.sharded.stats()
    }

    /// Boundary messages carried across shards so far.
    pub fn boundary_messages(&self) -> u64 {
        self.sharded.boundary_messages()
    }

    /// Per-shard wall-clock spent inside `World::run_until`, in
    /// nanoseconds (index = shard).
    pub fn shard_wall_nanos(&self) -> &[u64] {
        self.sharded.shard_wall_nanos()
    }

    /// The conservative lookahead (min cross-shard propagation delay);
    /// `None` with one shard.
    pub fn lookahead(&self) -> Option<SimTime> {
        self.sharded.lookahead()
    }

    // ---- fleet-wide monitoring ----

    /// Total XOFF pause frames sent by all switches.
    pub fn total_switch_pause_tx(&self) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.total_pause_tx())
            .sum()
    }

    /// Total drops of a given reason across switches.
    pub fn total_drops_of(&self, reason: DropReason) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.drops_of(reason))
            .sum()
    }

    /// Drops that must be zero in a healthy lossless fabric.
    pub fn lossless_drops(&self) -> u64 {
        self.total_drops_of(DropReason::LosslessOverflow)
    }

    /// Sum of receiver-side RDMA goodput bytes across all servers.
    pub fn total_rdma_goodput(&self) -> u64 {
        self.servers
            .iter()
            .filter(|s| s.kind == ServerKind::Rdma)
            .map(|s| {
                self.sharded
                    .world(s.shard as usize)
                    .node::<RdmaHost>(s.sim)
                    .total_goodput_bytes()
            })
            .sum()
    }

    /// Aggregate flow-cache hits and misses across every switch.
    pub fn flow_cache_totals(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for i in 0..self.switches.len() {
            let st = self.switch(i).flow_cache_stats();
            hits += st.hits;
            misses += st.misses;
        }
        (hits, misses)
    }

    /// Shard `s`'s telemetry bank (disabled unless the builder attached
    /// an enabled hub).
    pub fn hub(&self, s: usize) -> &MetricsHub {
        &self.hubs[s]
    }

    /// Fleet counter snapshot: every shard bank's counters merged by
    /// name, duplicates summed, name-sorted — deterministic regardless
    /// of shard count or threading.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for h in &self.hubs {
            for (name, v) in h.counters_snapshot() {
                *merged.entry(name).or_insert(0) += v;
            }
        }
        merged.into_iter().collect()
    }

    /// Fleet gauge snapshot: every shard bank's gauges merged by name.
    /// Additive fleet gauges (engine events/pending, per-switch backlog)
    /// sum; names are unique per shard otherwise, so summing is exact.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        let mut merged: BTreeMap<String, f64> = BTreeMap::new();
        for h in &self.hubs {
            for (name, v) in h.gauges_snapshot() {
                *merged.entry(name).or_insert(0.0) += v;
            }
        }
        merged.into_iter().collect()
    }

    // ---- pingmesh ----

    /// Pingmesh scope of a server pair (§5.3's ToR / Podset / DC levels).
    pub fn scope_of(&self, a: ServerId, b: ServerId) -> rocescale_monitor::pingmesh::Scope {
        use rocescale_monitor::pingmesh::Scope;
        if self.same_tor(a, b) {
            Scope::IntraTor
        } else if self.server_pod(a) == self.server_pod(b) {
            Scope::IntraPodset
        } else {
            Scope::IntraDc
        }
    }

    /// Install the RDMA Pingmesh service (§5.3), shard-oblivious: the
    /// same pair-selection as [`Cluster::install_pingmesh`]
    /// (crate::Cluster::install_pingmesh), with probes that cross shard
    /// boundaries riding the exchange like any other flow. Returns the
    /// probed pairs; collect results with
    /// [`ShardedCluster::pingmesh_report`].
    pub fn install_pingmesh(
        &mut self,
        fanout: usize,
        interval: SimTime,
    ) -> Vec<(ServerId, ServerId)> {
        let servers = self.servers_of_kind(ServerKind::Rdma);
        let mut pairs = Vec::new();
        for (i, a) in servers.iter().enumerate() {
            for k in 1..=fanout {
                let b = servers[(i + k * (servers.len() / (fanout + 1)).max(1)) % servers.len()];
                if b == *a {
                    continue;
                }
                self.connect_qp(
                    *a,
                    b,
                    (20_000 + i * 17 + k) as u16,
                    rocescale_nic::QpApp::Pinger {
                        payload: rocescale_monitor::pingmesh::PROBE_BYTES,
                        interval,
                        start_at: SimTime::from_micros(10 + (i * 13 + k * 7) as u64),
                    },
                    rocescale_nic::QpApp::Echo {
                        reply_len: rocescale_monitor::pingmesh::PROBE_BYTES,
                    },
                );
                pairs.push((*a, b));
            }
        }
        pairs
    }

    /// Aggregate all collected probe RTTs into a fleet Pingmesh report.
    ///
    /// Each RTT sample is mirrored into the *prober's owning shard's*
    /// bank (so `pingmesh.{tor,podset,dc}.*` counters live next to that
    /// shard's other metrics and merge by name in
    /// [`counters_snapshot`](Self::counters_snapshot)), and recorded
    /// once more in the returned unbound fleet aggregate — which is what
    /// callers quote for percentiles, since per-shard gauge banks only
    /// see their own shard's latencies.
    pub fn pingmesh_report(&mut self, pairs: &[(ServerId, ServerId)]) -> Pingmesh {
        use rocescale_monitor::pingmesh::ProbeResult;
        let mut shard_banks: Vec<Pingmesh> = self
            .hubs
            .iter()
            .map(|h| Pingmesh::with_hub(h.clone()))
            .collect();
        let mut fleet = Pingmesh::new();
        for (a, b) in pairs {
            let scope = self.scope_of(*a, *b);
            let info = &self.servers[a.0];
            let (shard, sim) = (info.shard, info.sim);
            let samples = std::mem::take(
                &mut self
                    .sharded
                    .world_mut(shard as usize)
                    .node_mut::<RdmaHost>(sim)
                    .stats
                    .rtt_samples_ps,
            );
            for s in samples {
                shard_banks[shard as usize].record(scope, ProbeResult::Rtt(s));
                fleet.record(scope, ProbeResult::Rtt(s));
            }
        }
        fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterBuilder, ExecutionProfile};
    use rocescale_sim::SimTime;

    fn two_pods(seed: u64) -> ClusterBuilder {
        ClusterBuilder::new(ClosSpec::uniform_40g(2, 1, 2, 2, 2)).seed(seed)
    }

    fn saturate() -> QpApp {
        QpApp::Saturate {
            msg_len: 128 * 1024,
            inflight: 1,
        }
    }

    #[test]
    fn sharded_cluster_carries_cross_pod_traffic() {
        let mut c = two_pods(3)
            .execution(ExecutionProfile::Sharded { shards: 2 })
            .build_sharded();
        assert_eq!(c.shard_count(), 2);
        let ids = c.all_servers();
        let a = *ids.iter().find(|s| c.server_pod(**s) == 0).unwrap();
        let b = *ids.iter().find(|s| c.server_pod(**s) == 1).unwrap();
        assert_ne!(c.server_shard(a), c.server_shard(b));
        c.connect_qp(a, b, 6000, saturate(), QpApp::None);
        c.run_for_millis(2);
        assert!(
            c.total_rdma_goodput() >= 128 * 1024,
            "cross-pod flow must complete through the exchange: {}",
            c.total_rdma_goodput()
        );
        assert!(
            c.exchange_epochs() > 0,
            "multi-shard runs advance in epochs"
        );
        assert!(c.boundary_messages() > 0, "the flow crosses the boundary");
        assert_eq!(c.lossless_drops(), 0);
        assert!(c.lookahead().unwrap() > SimTime::ZERO);
    }

    #[test]
    fn single_pod_collapses_to_the_plain_cluster() {
        // two_tier topologies have one pod, so any shard request
        // collapses to one shard — and the event stream (digest, event
        // count) is byte-identical to `build()`'s. This is the guarantee
        // that re-pins the golden trace under `Sharded { shards: N }`.
        let drive = |mut c: crate::Cluster| {
            let ids = c.all_servers();
            c.connect_qp(ids[1], ids[0], 5000, saturate(), QpApp::None);
            c.run_for_millis(1);
            (c.world.dispatch_digest(), c.world.events_processed())
        };
        let single = drive(ClusterBuilder::two_tier(2, 3).seed(9).build());

        let mut s = ClusterBuilder::two_tier(2, 3)
            .seed(9)
            .execution(ExecutionProfile::Sharded { shards: 4 })
            .build_sharded();
        assert_eq!(s.shard_count(), 1);
        let ids = s.all_servers();
        s.connect_qp(ids[1], ids[0], 5000, saturate(), QpApp::None);
        s.run_for_millis(1);
        assert_eq!(s.exchange_epochs(), 0, "one shard never runs epochs");
        assert_eq!((s.dispatch_digest(), s.events_processed()), single);
    }

    #[test]
    fn serial_and_threaded_epochs_agree_with_merged_counters() {
        let run = |threaded: bool| {
            let mut c = two_pods(7)
                .telemetry(MetricsHub::enabled())
                .execution(ExecutionProfile::Sharded { shards: 2 })
                .build_sharded();
            c.set_threaded(threaded);
            let ids = c.all_servers();
            let a = *ids.iter().find(|s| c.server_pod(**s) == 0).unwrap();
            let b = *ids.iter().find(|s| c.server_pod(**s) == 1).unwrap();
            c.connect_qp(a, b, 6000, saturate(), QpApp::None);
            c.run_until(SimTime::from_micros(800));
            (
                c.dispatch_digest(),
                c.events_processed(),
                c.exchange_epochs(),
                c.boundary_messages(),
                c.counters_snapshot(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
