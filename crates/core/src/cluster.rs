//! Cluster construction and operation: topology → simulated fabric.

use rocescale_cc::CcParams;
use rocescale_dcqcn::CpParams;
use rocescale_monitor::deadlock::Snapshot;
use rocescale_monitor::{
    GaugeId, MemorySink, MetricsHub, QueueSample, ScopeId, TelemetryConfig, TraceSink,
};
use rocescale_nic::{
    host::{TOK_INJECT_STORM, TOK_STOP_STORM},
    HostPfcMode, NicConfig, QpApp, QpHandle, RdmaHost,
};
use rocescale_packet::{MacAddr, Priority};
use rocescale_sim::{
    DigestMode, EngineKind, LinkSpec, NodeId, PortId, ProfileMode, RemotePort, SimTime, World,
};
use rocescale_switch::{
    AdminAction, BufferConfig, ClassifyMode, DropReason, EcmpGroup, PortRole, Switch, SwitchConfig,
    WatchdogConfig,
};
use rocescale_tcp::{ConnHandle, TcpApp, TcpHost, TcpHostConfig};
use rocescale_topology::{ClosSpec, Partition, RouteSpec, Tier, Topology};
use rocescale_transport::QpConfig;

use crate::detect::{DeadlockProbe, ProbeLink};
use crate::instrument::InstrumentationProfile;
use crate::profiles::{
    ExecutionProfile, FabricProfile, FaultProfile, ScriptAction, TransportProfile,
};

/// Per-shard world-seed stride: shard `s` seeds its world with
/// `seed + s * STRIDE`, so shard 0 keeps the builder's seed (and thus
/// the single-shard event stream) while other shards draw independent
/// streams.
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Park an admin action in a switch and schedule the timer that fires it
/// — the build-time translation of one scripted incident step.
fn sched_admin(world: &mut World, at: SimTime, sim: NodeId, action: AdminAction) {
    let token = world.node_mut::<Switch>(sim).schedule_admin(action);
    world.schedule_timer(at, sim, token);
}

/// PFC flavour for the whole cluster (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfcMode {
    /// DSCP-based PFC: the paper's design. Layer-3 clean, access-mode
    /// server ports.
    Dscp,
    /// VLAN-based PFC: the original design whose trunk-mode coupling
    /// breaks PXE boot.
    Vlan,
}

/// What runs on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// RoCEv2 host.
    Rdma,
    /// Kernel-TCP host (the baseline / legacy apps).
    Tcp,
}

/// Index into the cluster's server list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub usize);

/// Builder for a [`Cluster`].
///
/// Configuration is grouped into five profiles — [`FabricProfile`]
/// (switches), [`TransportProfile`] (NICs), [`FaultProfile`] (injected
/// failures), [`InstrumentationProfile`] (observation: telemetry hub,
/// digest, profiler, trace sink), [`ExecutionProfile`] (single-threaded
/// or pod-sharded dispatch) — each defaulting to the paper's deployed
/// settings. The builder itself keeps only run mechanics (seed, engine
/// backend) and per-node escape hatches.
pub struct ClusterBuilder {
    spec: ClosSpec,
    fabric: FabricProfile,
    transport: TransportProfile,
    faults: FaultProfile,
    instr: InstrumentationProfile,
    execution: ExecutionProfile,
    seed: u64,
    engine: EngineKind,
    server_kind: Box<dyn FnMut(usize) -> ServerKind + Send>,
    host_tweak: HostTweak,
    tcp_tweak: TcpTweak,
    switch_tweak: SwitchTweak,
}

/// Per-server hook mutating a NIC config before the host is built.
///
/// Hooks are `Send` (like the builder itself) so the fleet runner can
/// construct whole clusters inside worker threads.
type HostTweak = Box<dyn FnMut(usize, &mut NicConfig) + Send>;
/// Per-server hook mutating a TCP host config before the host is built.
type TcpTweak = Box<dyn FnMut(usize, &mut TcpHostConfig) + Send>;
/// Per-switch hook (keyed by name) mutating a switch config.
type SwitchTweak = Box<dyn FnMut(&str, &mut SwitchConfig) + Send>;

impl ClusterBuilder {
    /// A cluster over an arbitrary Clos spec, with the paper's
    /// recommended configuration: DSCP-based PFC, go-back-N, DCQCN + ECN,
    /// watchdogs on, deadlock fix on, PFC up to the spine.
    pub fn new(spec: ClosSpec) -> ClusterBuilder {
        ClusterBuilder {
            spec,
            fabric: FabricProfile::paper_default(),
            transport: TransportProfile::paper_default(),
            faults: FaultProfile::paper_default(),
            instr: InstrumentationProfile::paper_default(),
            execution: ExecutionProfile::paper_default(),
            seed: 1,
            engine: EngineKind::default(),
            server_kind: Box::new(|_| ServerKind::Rdma),
            host_tweak: Box::new(|_, _| {}),
            tcp_tweak: Box::new(|_, _| {}),
            switch_tweak: Box::new(|_, _| {}),
        }
    }

    /// One pod, `tors` racks of `servers_per_tor`, two leaves (a small
    /// two-tier testbed like Figure 8's).
    pub fn two_tier(tors: u32, servers_per_tor: u32) -> ClusterBuilder {
        ClusterBuilder::new(ClosSpec::uniform_40g(1, tors, 2, 2, servers_per_tor))
    }

    /// One ToR with `servers` hosts (a lab rack).
    pub fn single_tor(servers: u32) -> ClusterBuilder {
        ClusterBuilder::new(ClosSpec::uniform_40g(1, 1, 1, 1, servers))
    }

    /// Replace the switch-side configuration profile.
    pub fn fabric(mut self, f: FabricProfile) -> Self {
        self.fabric = f;
        self
    }

    /// Replace the NIC-side transport profile.
    pub fn transport(mut self, t: TransportProfile) -> Self {
        self.transport = t;
        self
    }

    /// Replace the fault-injection profile.
    pub fn faults(mut self, f: FaultProfile) -> Self {
        self.faults = f;
        self
    }

    /// Replace the observation profile: telemetry hub, dispatch digest,
    /// dispatch profiler, and streaming trace sink, as one coherent
    /// group. This is the preferred surface; the loose
    /// [`telemetry`](Self::telemetry) / [`digest`](Self::digest) /
    /// [`profile`](Self::profile) setters below are shims into it.
    pub fn instrumentation(mut self, i: InstrumentationProfile) -> Self {
        self.instr = i;
        self
    }

    /// Replace the execution profile: single-threaded (the default) or
    /// pod-granular shards. [`build`](Self::build) always produces a
    /// single-world [`Cluster`] regardless; the profile takes effect
    /// through [`build_sharded`](Self::build_sharded), which honours the
    /// requested shard count (clamped to the topology's pod count).
    pub fn execution(mut self, e: ExecutionProfile) -> Self {
        self.execution = e;
        self
    }

    /// Attach a telemetry hub. Every switch, NIC and TCP host registers
    /// its instruments on it, and [`Cluster::run_until`] drives
    /// sim-time-aligned time-series sampling. The default (disabled) hub
    /// costs nothing and leaves the dispatch digest untouched.
    ///
    /// Deprecated shim into [`InstrumentationProfile::telemetry`], kept
    /// so pre-profile callers keep compiling; it preserves any sink or
    /// mode already set. New code should pass one
    /// [`instrumentation`](Self::instrumentation) profile.
    pub fn telemetry(mut self, hub: MetricsHub) -> Self {
        self.instr.telemetry = hub;
        self
    }

    /// RNG seed (every run with the same seed is identical).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Event-engine backend. Dispatch order — and thus every result — is
    /// identical across engines; this knob exists for differential tests
    /// and wheel-vs-heap benchmarks.
    pub fn engine(mut self, e: EngineKind) -> Self {
        self.engine = e;
        self
    }

    /// Dispatch-digest mode for the world (default: on). Fleet/bench runs
    /// that don't check golden traces can switch it off to trim the
    /// per-event hot path; results are identical either way.
    ///
    /// Deprecated shim into [`InstrumentationProfile::digest`].
    pub fn digest(mut self, d: DigestMode) -> Self {
        self.instr.digest = d;
        self
    }

    /// Dispatch-profiler mode for the world (default: off). With it on,
    /// the world wall-clocks every handler dispatch bucketed by event
    /// kind; read the result via [`rocescale_sim::World::event_profile`]
    /// on `cluster.world`. Simulated results and the dispatch digest are
    /// identical either way.
    ///
    /// Deprecated shim into [`InstrumentationProfile::profiler`].
    pub fn profile(mut self, p: ProfileMode) -> Self {
        self.instr.profile = p;
        self
    }

    /// Choose per-server kind (index = server order in the topology).
    pub fn server_kind(mut self, f: impl FnMut(usize) -> ServerKind + Send + 'static) -> Self {
        self.server_kind = Box::new(f);
        self
    }

    /// Post-process each RDMA host's config (MTT models, custom DCQCN…).
    pub fn host_tweak(mut self, f: impl FnMut(usize, &mut NicConfig) + Send + 'static) -> Self {
        self.host_tweak = Box::new(f);
        self
    }

    /// Post-process each TCP host's config (kernel model, RTO…).
    pub fn tcp_tweak(mut self, f: impl FnMut(usize, &mut TcpHostConfig) + Send + 'static) -> Self {
        self.tcp_tweak = Box::new(f);
        self
    }

    /// Post-process each switch's config by name (headroom overrides,
    /// per-type buffer settings — the §6.2 "new switch type" situation).
    pub fn switch_tweak(mut self, f: impl FnMut(&str, &mut SwitchConfig) + Send + 'static) -> Self {
        self.switch_tweak = Box::new(f);
        self
    }

    /// Instantiate the cluster (one world, one thread — the golden-trace
    /// path, whatever the execution profile says).
    pub fn build(mut self) -> Cluster {
        let spec = self.spec;
        let BuiltParts {
            mut worlds,
            topo,
            servers,
            switches,
            hubs,
            ..
        } = self.build_parts(1);
        let world = worlds.pop().expect("one shard builds one world");
        let telemetry = hubs.into_iter().next().expect("one shard builds one hub");

        // Live deadlock probe over every switch egress that faces another
        // device (fabric links both directions, plus switch→server ports
        // so storm victims show up as wait-chain leaves).
        let (probe_switches, probe_links) = probe_wiring(&topo, &switches);
        let deadlock = DeadlockProbe::new_sharded(
            &telemetry,
            probe_switches,
            probe_links,
            vec![Priority::new(3), Priority::new(4)],
            3,
        );

        // Fleet-level gauges published at each sample tick.
        let tele = ClusterTele::register(&telemetry, &switches);

        Cluster {
            world,
            topo,
            spec,
            servers,
            switches,
            telemetry,
            tele,
            deadlock,
        }
    }

    /// Instantiate the cluster as per-pod worker shards advanced through
    /// the conservative exchange (see [`crate::ShardedCluster`]). The
    /// [`ExecutionProfile`] chooses the shard count; `SingleThread` (or a
    /// single-pod topology, which the partition collapses) yields one
    /// shard whose event stream — and dispatch digest — is byte-identical
    /// to [`build`](Self::build)'s.
    pub fn build_sharded(mut self) -> crate::ShardedCluster {
        let spec = self.spec;
        let shards = self.execution.shard_count();
        let parts = self.build_parts(shards);
        crate::ShardedCluster::from_parts(parts, spec)
    }

    /// Everything `build` and `build_sharded` share: instantiate every
    /// device into its shard's world (the pod-granular [`Partition`]
    /// decides ownership), wire local links directly and boundary links
    /// as mirrored remote ports, and translate the fault profile into
    /// timers on the owning shards. With one effective shard this is
    /// exactly the historical single-world construction.
    fn build_parts(&mut self, shards: u32) -> BuiltParts {
        // A trace sink needs a live hub to stream through; upgrade a
        // disabled hub before any device registers instruments, then
        // attach the sink so records flow from the first event on.
        if self.instr.sink.is_some() && !self.instr.telemetry.is_enabled() {
            self.instr.telemetry = MetricsHub::enabled();
        }
        let topo = Topology::clos(&self.spec);
        let partition = Partition::pods(&topo, shards);
        let nshards = partition.shards() as usize;
        // With one effective shard the caller's sink attaches directly to
        // the hub (the historical path — record bytes unchanged, no shard
        // tag). With several, each shard's hub streams into its own
        // MemorySink bank and the caller's sink becomes the merge target:
        // ShardedCluster drains the banks in deterministic order at every
        // flush boundary and stamps each record with its shard.
        let mut deferred_sink = None;
        if let Some((sink, filter)) = self.instr.sink.take() {
            if nshards == 1 {
                self.instr.telemetry.attach_sink(sink, filter);
            } else {
                deferred_sink = Some((sink, filter));
            }
        }
        // Shard-local telemetry banks: shard 0 keeps the builder's hub
        // (so the single-shard path is unchanged and callers hold a live
        // handle), every other shard gets its own bank with the same
        // enablement and sampling cadence. Snapshots merge them by name
        // (ShardedCluster).
        let hubs: Vec<MetricsHub> = (0..nshards)
            .map(|s| {
                if s == 0 {
                    self.instr.telemetry.clone()
                } else if self.instr.telemetry.is_enabled() {
                    MetricsHub::with_config(TelemetryConfig {
                        sample_every_ps: self
                            .instr
                            .telemetry
                            .sample_every_ps()
                            .unwrap_or_else(|| TelemetryConfig::default().sample_every_ps),
                        ..TelemetryConfig::default()
                    })
                } else {
                    MetricsHub::disabled()
                }
            })
            .collect();
        let banks: Vec<MemorySink> = if let Some((_, filter)) = &deferred_sink {
            hubs.iter()
                .map(|h| {
                    let bank = MemorySink::new();
                    h.attach_sink(Box::new(bank.clone()), *filter);
                    bank
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut worlds: Vec<World> = (0..nshards as u64)
            .map(|s| {
                let mut w = World::new_with_engine(
                    self.seed.wrapping_add(s.wrapping_mul(SHARD_SEED_STRIDE)),
                    self.engine,
                );
                w.set_digest_mode(self.instr.digest);
                w.set_profile_mode(self.instr.profile);
                w
            })
            .collect();
        let n = topo.nodes.len();

        // MAC conventions: switches get 0x00F0_0000 + idx, servers idx+1.
        let switch_mac = |idx: usize| MacAddr::from_id(0x00F0_0000 + idx as u32);
        let server_mac = |idx: usize| MacAddr::from_id(idx as u32 + 1);

        // Peer role/mac per link endpoint for switch construction.
        let classify = match self.fabric.pfc_mode {
            PfcMode::Dscp => ClassifyMode::Dscp,
            PfcMode::Vlan => ClassifyMode::Vlan,
        };
        let pfc_enabled = self.fabric.pfc_enabled;
        let stage = self.fabric.stage;
        let lossless_for = |tier: Tier| -> [bool; 8] {
            let on = pfc_enabled
                && match tier {
                    Tier::Tor => stage.tor(),
                    Tier::Leaf => stage.leaf(),
                    Tier::Spine => stage.spine(),
                    Tier::Server => true,
                };
            if on {
                [false, false, false, true, true, false, false, false]
            } else {
                [false; 8]
            }
        };

        // Each node's (shard, shard-local sim id) once instantiated.
        let mut sim_ids: Vec<Option<(u32, NodeId)>> = vec![None; n];
        let mut servers: Vec<ServerInfo> = Vec::new();
        let mut switches: Vec<SwitchInfo> = Vec::new();

        // Server build order (the index space FaultProfile uses).
        let mut order_of: Vec<Option<usize>> = vec![None; n];
        let mut next_order = 0usize;
        for (idx, node) in topo.nodes.iter().enumerate() {
            if node.tier == Tier::Server {
                order_of[idx] = Some(next_order);
                next_order += 1;
            }
        }

        // Build switches first (they need routes + table seeds).
        for (idx, node) in topo.nodes.iter().enumerate() {
            if node.tier == Tier::Server {
                continue;
            }
            let ports = topo.port_count(idx);
            let mut cfg = SwitchConfig::new(node.name.clone(), ports);
            cfg.classify = classify;
            cfg.lossless = lossless_for(node.tier);
            // Port roles from the topology.
            let mut roles = vec![PortRole::Fabric; ports as usize];
            let mut max_meters = 2u32;
            for l in &topo.links {
                for (me, peer) in [(l.a, l.b), (l.b, l.a)] {
                    if me.0 == idx {
                        max_meters = max_meters.max(l.meters);
                        if topo.nodes[peer.0].tier == Tier::Server {
                            roles[me.1.index()] = PortRole::Server;
                        }
                    }
                }
            }
            cfg.port_roles = roles;
            cfg.buffer = BufferConfig {
                total_bytes: 12 << 20,
                headroom_per_port_pg: BufferConfig::headroom_for(40_000_000_000, max_meters, 1120),
                alpha: self.fabric.alpha,
                xoff_static: 256 * 1024,
                xon_delta: 2 * 1120,
            };
            cfg.ecn = if self.fabric.ecn {
                let mut e: [Option<CpParams>; 8] = Default::default();
                e[3] = Some(CpParams::default());
                e[4] = Some(CpParams::default());
                e
            } else {
                Default::default()
            };
            cfg.watchdog = WatchdogConfig {
                enabled: self.fabric.switch_watchdog,
                ..WatchdogConfig::default()
            };
            cfg.drop_lossless_on_incomplete_arp = self.fabric.drop_lossless_on_incomplete_arp;
            cfg.drop_ip_id_low_byte = self.faults.drop_ip_id_low_byte;
            cfg.per_packet_spraying = self.fabric.per_packet_spraying;
            let shard = partition.shard_of(idx);
            cfg.telemetry = hubs[shard as usize].clone();
            (self.switch_tweak)(&node.name.clone(), &mut cfg);

            let mut sw = Switch::new(cfg, switch_mac(idx), idx as u64 * 0x9e37 + 7);
            for r in &topo.routes[idx] {
                match r {
                    RouteSpec::Connected { prefix, len } => {
                        sw.routes_mut().add_connected(*prefix, *len);
                    }
                    RouteSpec::Via { prefix, len, ports } => {
                        sw.routes_mut()
                            .add(*prefix, *len, EcmpGroup::new(ports.clone()));
                    }
                }
            }
            // Seed ARP + MAC for directly attached servers; peer MACs for
            // fabric links.
            for l in &topo.links {
                for (me, peer) in [(l.a, l.b), (l.b, l.a)] {
                    if me.0 != idx {
                        continue;
                    }
                    match topo.nodes[peer.0].tier {
                        Tier::Server => {
                            let ip = topo.nodes[peer.0].ip.expect("servers have IPs");
                            sw.seed_arp(ip, server_mac(peer.0), SimTime::ZERO);
                            // Dead-but-remembered servers (§4.2): the ARP
                            // entry survives but the MAC→port binding is
                            // gone, so lossless traffic to them hits the
                            // incomplete-ARP path.
                            let dead = order_of[peer.0]
                                .is_some_and(|o| self.faults.dead_servers.contains(&o));
                            if !dead {
                                sw.seed_mac(server_mac(peer.0), me.1, SimTime::ZERO);
                            }
                        }
                        _ => sw.set_peer_mac(me.1, switch_mac(peer.0)),
                    }
                }
            }
            let sim = worlds[shard as usize].add_node(Box::new(sw));
            sim_ids[idx] = Some((shard, sim));
            switches.push(SwitchInfo {
                topo_idx: idx,
                shard,
                sim,
                tier: node.tier,
                name: node.name.clone(),
            });
        }

        // Hosts.
        for (idx, node) in topo.nodes.iter().enumerate() {
            if node.tier != Tier::Server {
                continue;
            }
            let tor_idx = topo.tor_of_server(idx);
            let gateway = switch_mac(tor_idx);
            let ip = node.ip.expect("servers have IPs");
            let order = servers.len();
            let kind = (self.server_kind)(order);
            let shard = partition.shard_of(idx);
            let sim = match kind {
                ServerKind::Rdma => {
                    let mut cfg = NicConfig::new(node.name.clone(), idx as u32 + 1, ip, gateway);
                    cfg.pfc_mode = match self.fabric.pfc_mode {
                        PfcMode::Dscp => HostPfcMode::Dscp,
                        PfcMode::Vlan => HostPfcMode::Vlan { vid: 100 },
                    };
                    cfg.qp_defaults = QpConfig {
                        recovery: self.transport.recovery,
                        rto_ps: self.transport.qp_rto.as_ps(),
                        ..QpConfig::default()
                    };
                    // Sender-role congestion control, with parameters
                    // derived from the host's line rate (for DCQCN this
                    // reproduces the NicConfig default exactly).
                    cfg.cc = CcParams::for_line_rate(self.transport.cc, cfg.link_bps);
                    cfg.nic_watchdog_after = self.transport.nic_watchdog;
                    cfg.telemetry = hubs[shard as usize].clone();
                    (self.host_tweak)(order, &mut cfg);
                    worlds[shard as usize].add_node(Box::new(RdmaHost::new(cfg)))
                }
                ServerKind::Tcp => {
                    let mut cfg =
                        TcpHostConfig::new(node.name.clone(), idx as u32 + 1, ip, gateway);
                    cfg.conn.min_rto_ps = self.transport.tcp_min_rto.as_ps();
                    cfg.telemetry = hubs[shard as usize].clone();
                    (self.tcp_tweak)(order, &mut cfg);
                    worlds[shard as usize].add_node(Box::new(TcpHost::new(cfg)))
                }
            };
            sim_ids[idx] = Some((shard, sim));
            servers.push(ServerInfo {
                topo_idx: idx,
                shard,
                sim,
                kind,
                ip,
                pod: node.pod,
                tor_topo_idx: tor_idx,
            });
        }

        // Links: shard-local ones wire directly; boundary links become a
        // mirrored pair of remote ports whose packets travel through the
        // shard exchange (the partition guarantees only ToR/leaf↔spine
        // links ever cross, so the exchange lookahead is the spine-cable
        // propagation delay).
        for l in &topo.links {
            let (sa, a) = sim_ids[l.a.0].expect("all nodes instantiated");
            let (sb, b) = sim_ids[l.b.0].expect("all nodes instantiated");
            let spec = LinkSpec::with_length(l.rate_bps, l.meters);
            if sa == sb {
                worlds[sa as usize].connect(a, l.a.1, b, l.b.1, spec);
            } else {
                worlds[sa as usize].connect_remote(
                    a,
                    l.a.1,
                    spec,
                    RemotePort {
                        shard: sb,
                        node: b,
                        port: l.b.1,
                    },
                );
                worlds[sb as usize].connect_remote(
                    b,
                    l.b.1,
                    spec,
                    RemotePort {
                        shard: sa,
                        node: a,
                        port: l.a.1,
                    },
                );
            }
        }

        // Injected NIC pause storms (FaultProfile).
        for (idx, at) in &self.faults.storms {
            let s = servers
                .get(*idx)
                .unwrap_or_else(|| panic!("storm target {idx} out of range"));
            worlds[s.shard as usize].schedule_timer(*at, s.sim, TOK_INJECT_STORM);
        }

        // Incident-replay script (FaultProfile::at): every action becomes
        // either a NIC storm timer or a switch admin action fired by an
        // ordinary Timer event, so scripted runs stay deterministic and
        // digest-pinnable — and an empty script changes nothing.
        {
            let find_switch = |name: &str| -> &SwitchInfo {
                switches
                    .iter()
                    .find(|s| s.name == name)
                    .unwrap_or_else(|| panic!("script names unknown switch {name:?}"))
            };
            // A server's ToR-side attachment: (ToR shard, ToR sim node,
            // ToR port facing the server, server topo index).
            let tor_attach = |server: usize| -> (u32, NodeId, PortId, usize) {
                let info = servers
                    .get(server)
                    .unwrap_or_else(|| panic!("script server {server} out of range"));
                let (tor_t, srv_t) = (info.tor_topo_idx, info.topo_idx);
                let port = topo
                    .links
                    .iter()
                    .find_map(|l| {
                        if l.a.0 == tor_t && l.b.0 == srv_t {
                            Some(l.a.1)
                        } else if l.b.0 == tor_t && l.a.0 == srv_t {
                            Some(l.b.1)
                        } else {
                            None
                        }
                    })
                    .expect("server has a ToR link");
                let (shard, sim) = sim_ids[tor_t].expect("ToR instantiated");
                (shard, sim, port, srv_t)
            };
            let script = std::mem::take(&mut self.faults.script);
            for (at, action) in &script {
                match action {
                    ScriptAction::ServerLink { server, up } => {
                        let (shard, tor, port, _) = tor_attach(*server);
                        sched_admin(
                            &mut worlds[shard as usize],
                            *at,
                            tor,
                            AdminAction::LinkSet { port, up: *up },
                        );
                    }
                    ScriptAction::FabricLink { a, b, up } => {
                        let (sa, sb) = (find_switch(a), find_switch(b));
                        let port = topo
                            .links
                            .iter()
                            .find_map(|l| {
                                if l.a.0 == sa.topo_idx && l.b.0 == sb.topo_idx {
                                    Some(l.a.1)
                                } else if l.b.0 == sa.topo_idx && l.a.0 == sb.topo_idx {
                                    Some(l.b.1)
                                } else {
                                    None
                                }
                            })
                            .unwrap_or_else(|| panic!("no fabric link {a:?} <-> {b:?}"));
                        sched_admin(
                            &mut worlds[sa.shard as usize],
                            *at,
                            sa.sim,
                            AdminAction::LinkSet { port, up: *up },
                        );
                    }
                    ScriptAction::StormStart { server } => {
                        let s = servers
                            .get(*server)
                            .unwrap_or_else(|| panic!("script server {server} out of range"));
                        worlds[s.shard as usize].schedule_timer(*at, s.sim, TOK_INJECT_STORM);
                    }
                    ScriptAction::StormStop { server } => {
                        let s = servers
                            .get(*server)
                            .unwrap_or_else(|| panic!("script server {server} out of range"));
                        worlds[s.shard as usize].schedule_timer(*at, s.sim, TOK_STOP_STORM);
                    }
                    ScriptAction::ServerDeath { server } => {
                        // A dead server is *silent*: its link goes down
                        // (no frames to re-learn the MAC from) and its
                        // MAC entry is evicted — while the ARP entry
                        // survives, the §4.2 "dead but remembered" state.
                        let (shard, tor, port, srv_t) = tor_attach(*server);
                        let world = &mut worlds[shard as usize];
                        sched_admin(world, *at, tor, AdminAction::LinkSet { port, up: false });
                        sched_admin(
                            world,
                            *at,
                            tor,
                            AdminAction::EvictMac {
                                mac: server_mac(srv_t),
                            },
                        );
                    }
                    ScriptAction::ServerResurrect { server } => {
                        let (shard, tor, port, srv_t) = tor_attach(*server);
                        let world = &mut worlds[shard as usize];
                        sched_admin(world, *at, tor, AdminAction::LinkSet { port, up: true });
                        sched_admin(
                            world,
                            *at,
                            tor,
                            AdminAction::SeedMac {
                                mac: server_mac(srv_t),
                                port,
                            },
                        );
                    }
                    ScriptAction::PfcThreshold {
                        switch,
                        alpha,
                        xoff_static,
                    } => {
                        let sw = find_switch(switch);
                        sched_admin(
                            &mut worlds[sw.shard as usize],
                            *at,
                            sw.sim,
                            AdminAction::SetThresholds {
                                alpha: *alpha,
                                xoff_static: *xoff_static,
                            },
                        );
                    }
                    ScriptAction::SetLossless { switch, prio, on } => {
                        let sw = find_switch(switch);
                        sched_admin(
                            &mut worlds[sw.shard as usize],
                            *at,
                            sw.sim,
                            AdminAction::SetLossless {
                                prio: *prio,
                                on: *on,
                            },
                        );
                    }
                    ScriptAction::Reroute {
                        switch,
                        prefix,
                        len,
                        ports,
                    } => {
                        let sw = find_switch(switch);
                        sched_admin(
                            &mut worlds[sw.shard as usize],
                            *at,
                            sw.sim,
                            AdminAction::Reroute {
                                prefix: *prefix,
                                len: *len,
                                ports: ports.iter().map(|p| PortId(*p)).collect(),
                            },
                        );
                    }
                }
            }
        }

        BuiltParts {
            worlds,
            partition,
            topo,
            servers,
            switches,
            hubs,
            banks,
            sink: deferred_sink.map(|(sink, _)| sink),
        }
    }
}

/// The deadlock probe's wiring over a built fabric: every switch keyed by
/// (name, shard, sim id), and every switch egress that faces another
/// device (fabric links both directions, plus switch→server ports so
/// storm victims show up as wait-chain leaves). Shared by `build` and the
/// sharded cluster so both flavours run the identical probe.
pub(crate) fn probe_wiring(
    topo: &Topology,
    switches: &[SwitchInfo],
) -> (Vec<(String, u32, NodeId)>, Vec<ProbeLink>) {
    let probe_switches: Vec<(String, u32, NodeId)> = switches
        .iter()
        .map(|s| (s.name.clone(), s.shard, s.sim))
        .collect();
    let mut probe_links = Vec::new();
    for l in &topo.links {
        for (me, peer) in [(l.a, l.b), (l.b, l.a)] {
            if topo.nodes[me.0].tier == Tier::Server {
                continue;
            }
            let Some(sw_idx) = switches.iter().position(|s| s.topo_idx == me.0) else {
                continue;
            };
            probe_links.push(ProbeLink {
                switch: sw_idx,
                port: me.1,
                peer: topo.nodes[peer.0].name.clone(),
            });
        }
    }
    (probe_switches, probe_links)
}

/// What [`ClusterBuilder::build_parts`] hands back: every device
/// instantiated into its shard's world and fully wired, plus the index
/// structures both cluster flavours need.
pub(crate) struct BuiltParts {
    pub(crate) worlds: Vec<World>,
    pub(crate) partition: Partition,
    pub(crate) topo: Topology,
    pub(crate) servers: Vec<ServerInfo>,
    pub(crate) switches: Vec<SwitchInfo>,
    pub(crate) hubs: Vec<MetricsHub>,
    /// Per-shard trace banks (parallel to `hubs`; empty when no sink was
    /// configured or one effective shard attached it directly).
    pub(crate) banks: Vec<MemorySink>,
    /// The caller's sink, deferred for the sharded merge (multi-shard
    /// builds with a sink configured; `None` otherwise).
    pub(crate) sink: Option<Box<dyn TraceSink>>,
}

/// Cluster-level gauge ids (sentinels when telemetry is disabled).
pub(crate) struct ClusterTele {
    pub(crate) engine_events: GaugeId,
    pub(crate) engine_pending: GaugeId,
    pub(crate) switch_backlog: Vec<GaugeId>,
    /// Each switch's trace scope (`switch.{name}` — the same name its
    /// own `SwitchTele` registers, so streamed queue samples land under
    /// the same scope as the switch's hop records and events).
    pub(crate) switch_scopes: Vec<ScopeId>,
}

impl ClusterTele {
    pub(crate) fn register(hub: &MetricsHub, switches: &[SwitchInfo]) -> ClusterTele {
        ClusterTele {
            engine_events: hub.gauge("engine.events_processed"),
            engine_pending: hub.gauge("engine.pending"),
            switch_backlog: switches
                .iter()
                .map(|sw| hub.gauge(&format!("switch.{}.lossless_backlog_bytes", sw.name)))
                .collect(),
            switch_scopes: switches
                .iter()
                .map(|sw| hub.scope(&format!("switch.{}", sw.name)))
                .collect(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ServerInfo {
    #[allow(dead_code)]
    pub(crate) topo_idx: usize,
    /// Owning shard (always 0 in a single-world [`Cluster`]).
    pub(crate) shard: u32,
    /// Shard-local sim node id.
    pub(crate) sim: NodeId,
    pub(crate) kind: ServerKind,
    pub(crate) ip: u32,
    pub(crate) pod: u32,
    pub(crate) tor_topo_idx: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct SwitchInfo {
    #[allow(dead_code)]
    pub(crate) topo_idx: usize,
    /// Owning shard (always 0 in a single-world [`Cluster`]).
    pub(crate) shard: u32,
    /// Shard-local sim node id.
    pub(crate) sim: NodeId,
    pub(crate) tier: Tier,
    pub(crate) name: String,
}

/// A running cluster: the simulation world plus the index structures to
/// reach every device.
pub struct Cluster {
    /// The simulation world (exposed for advanced scenarios: fault
    /// injection timers, custom nodes).
    pub world: World,
    topo: Topology,
    spec: ClosSpec,
    servers: Vec<ServerInfo>,
    switches: Vec<SwitchInfo>,
    telemetry: MetricsHub,
    tele: ClusterTele,
    deadlock: DeadlockProbe,
}

impl Cluster {
    /// The Clos spec this cluster was built from.
    pub fn spec(&self) -> &ClosSpec {
        &self.spec
    }

    /// The topology description.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// All server ids.
    pub fn all_servers(&self) -> Vec<ServerId> {
        (0..self.servers.len()).map(ServerId).collect()
    }

    /// Server ids of a given kind.
    pub fn servers_of_kind(&self, kind: ServerKind) -> Vec<ServerId> {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| ServerId(i))
            .collect()
    }

    /// The servers under `tor` (pod-relative index), in port order.
    pub fn servers_under(&self, pod: u32, tor: u32) -> Vec<ServerId> {
        let subnet = rocescale_topology::tor_subnet(pod, tor);
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ip & 0xffff_ff00 == subnet)
            .map(|(i, _)| ServerId(i))
            .collect()
    }

    /// A server's IP.
    pub fn server_ip(&self, id: ServerId) -> u32 {
        self.servers[id.0].ip
    }

    /// A server's pod.
    pub fn server_pod(&self, id: ServerId) -> u32 {
        self.servers[id.0].pod
    }

    /// A server's kind.
    pub fn server_kind_of(&self, id: ServerId) -> ServerKind {
        self.servers[id.0].kind
    }

    /// The sim node id of a server (for fault-injection timers).
    pub fn server_node(&self, id: ServerId) -> NodeId {
        self.servers[id.0].sim
    }

    /// Two servers share a ToR?
    pub fn same_tor(&self, a: ServerId, b: ServerId) -> bool {
        self.servers[a.0].tor_topo_idx == self.servers[b.0].tor_topo_idx
    }

    /// Borrow an RDMA server.
    pub fn rdma(&self, id: ServerId) -> &RdmaHost {
        assert_eq!(self.servers[id.0].kind, ServerKind::Rdma);
        self.world.node::<RdmaHost>(self.servers[id.0].sim)
    }

    /// Mutably borrow an RDMA server.
    pub fn rdma_mut(&mut self, id: ServerId) -> &mut RdmaHost {
        assert_eq!(self.servers[id.0].kind, ServerKind::Rdma);
        self.world.node_mut::<RdmaHost>(self.servers[id.0].sim)
    }

    /// Borrow a TCP server.
    pub fn tcp(&self, id: ServerId) -> &TcpHost {
        assert_eq!(self.servers[id.0].kind, ServerKind::Tcp);
        self.world.node::<TcpHost>(self.servers[id.0].sim)
    }

    /// Mutably borrow a TCP server.
    pub fn tcp_mut(&mut self, id: ServerId) -> &mut TcpHost {
        assert_eq!(self.servers[id.0].kind, ServerKind::Tcp);
        self.world.node_mut::<TcpHost>(self.servers[id.0].sim)
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Borrow switch `i` (iteration order: ToRs and leaves pod-major,
    /// then spines — the topology's order).
    pub fn switch(&self, i: usize) -> &Switch {
        self.world.node::<Switch>(self.switches[i].sim)
    }

    /// Mutably borrow switch `i`.
    pub fn switch_mut(&mut self, i: usize) -> &mut Switch {
        self.world.node_mut::<Switch>(self.switches[i].sim)
    }

    /// A switch's display name.
    pub fn switch_name(&self, i: usize) -> &str {
        &self.switches[i].name
    }

    /// Indices of switches of a tier.
    pub fn switches_of_tier(&self, tier: Tier) -> Vec<usize> {
        self.switches
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tier == tier)
            .map(|(i, _)| i)
            .collect()
    }

    /// The ToR switch index (into [`Cluster::switch`]) serving a server.
    pub fn tor_of(&self, id: ServerId) -> usize {
        let t = self.servers[id.0].tor_topo_idx;
        self.switches
            .iter()
            .position(|s| s.topo_idx == t)
            .expect("server's ToR exists")
    }

    // ---- workload wiring ----

    /// Create a QP pair between two RDMA servers. `udp_src` selects the
    /// ECMP path; both directions share it.
    pub fn connect_qp(
        &mut self,
        a: ServerId,
        b: ServerId,
        udp_src: u16,
        app_a: QpApp,
        app_b: QpApp,
    ) -> (QpHandle, QpHandle) {
        let a_ip = self.server_ip(a);
        let b_ip = self.server_ip(b);
        let a_qpn = self.rdma(a).qp_count() as u32;
        let b_qpn = self.rdma(b).qp_count() as u32;
        let ha = self.rdma_mut(a).add_qp(b_ip, b_qpn, udp_src, app_a);
        let hb = self.rdma_mut(b).add_qp(a_ip, a_qpn, udp_src, app_b);
        (ha, hb)
    }

    /// Create a TCP connection between two TCP servers.
    pub fn connect_tcp(
        &mut self,
        a: ServerId,
        b: ServerId,
        app_a: TcpApp,
        app_b: TcpApp,
    ) -> (ConnHandle, ConnHandle) {
        let a_ip = self.server_ip(a);
        let b_ip = self.server_ip(b);
        let pa = self.tcp_mut(a).alloc_port();
        let pb = self.tcp_mut(b).alloc_port();
        let ca = self.tcp_mut(a).add_conn(b_ip, pa, pb, app_a);
        let cb = self.tcp_mut(b).add_conn(a_ip, pb, pa, app_b);
        (ca, cb)
    }

    // ---- running ----

    /// Run the simulation until `t`.
    ///
    /// With telemetry enabled the run is chunked at sample boundaries so
    /// time-series points land on the hub's cadence — and, with a trace
    /// sink streaming queue samples, each epoch also emits one
    /// [`QueueSample`] per switch. Chunked `run_until` dispatches the
    /// exact same event sequence as one big call, so the dispatch digest
    /// is byte-identical with telemetry (and any sink) on or off.
    pub fn run_until(&mut self, t: SimTime) {
        if self.telemetry.is_enabled() {
            while let Some(ns) = self.telemetry.next_sample_ps() {
                if ns >= t.as_ps() {
                    break;
                }
                self.world.run_until(SimTime(ns));
                self.publish_gauges();
                self.stream_queue_samples(ns);
                self.deadlock.observe(&self.world, SimTime(ns));
                self.telemetry.maybe_sample(ns);
            }
        }
        self.world.run_until(t);
        // A run boundary is where readers expect the exported trace to
        // be complete; no-op without a sink.
        self.telemetry.flush_sink();
    }

    /// Stream one queue-depth sample per switch at epoch boundary `ns`
    /// (no-op unless a sink with the queue class is attached).
    fn stream_queue_samples(&self, ns: u64) {
        if !self.telemetry.streams_queues() {
            return;
        }
        for i in 0..self.switches.len() {
            let sw = self.switch(i);
            self.telemetry.stream_queue(
                ns,
                self.tele.switch_scopes[i],
                QueueSample {
                    backlog_bytes: sw.lossless_backlog(),
                    max_port_bytes: sw.max_egress_depth(),
                    tx_pkts: sw.total_data_tx_pkts(),
                },
            );
        }
    }

    /// The live deadlock probe: cycle history, verdicts, last wait graph.
    /// Epochs run automatically at each telemetry sample boundary.
    pub fn deadlock_probe(&self) -> &DeadlockProbe {
        &self.deadlock
    }

    /// Force one deadlock-detection epoch right now (for runs without
    /// telemetry sampling, or end-of-run checks). Returns the wait cycle
    /// found this epoch, if any.
    pub fn deadlock_observe_now(&mut self) -> Option<Vec<String>> {
        let now = self.world.now();
        self.deadlock.observe(&self.world, now)
    }

    /// The cluster's telemetry hub (disabled unless one was attached via
    /// [`ClusterBuilder::telemetry`]).
    pub fn telemetry(&self) -> &MetricsHub {
        &self.telemetry
    }

    /// Refresh fleet-level gauges (engine progress, per-switch lossless
    /// backlog) from live state. Called automatically at each sample
    /// boundary; call manually before rendering JSON mid-run.
    pub fn publish_gauges(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.set_gauge(
            self.tele.engine_events,
            self.world.events_processed() as f64,
        );
        self.telemetry.set_gauge(
            self.tele.engine_pending,
            (self.world.sched_stats().pushed
                - self.world.sched_stats().dispatched
                - self.world.sched_stats().cancelled) as f64,
        );
        for i in 0..self.switches.len() {
            let backlog = self.switch(i).lossless_backlog() as f64;
            self.telemetry
                .set_gauge(self.tele.switch_backlog[i], backlog);
        }
    }

    /// Run for `ms` more milliseconds of simulated time.
    pub fn run_for_millis(&mut self, ms: u64) {
        let t = self.world.now() + SimTime::from_millis(ms);
        self.run_until(t);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    // ---- fleet-wide monitoring (what §5's systems aggregate) ----

    /// Total XOFF pause frames sent by all switches.
    pub fn total_switch_pause_tx(&self) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.total_pause_tx())
            .sum()
    }

    /// Total pause frames received by servers — the Figure 9/10 metric.
    pub fn total_server_pause_rx(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| match s.kind {
                ServerKind::Rdma => self.world.node::<RdmaHost>(s.sim).stats.pause_rx,
                ServerKind::Tcp => 0,
            })
            .sum()
    }

    /// Total drops of a given reason across switches.
    pub fn total_drops_of(&self, reason: DropReason) -> u64 {
        (0..self.switches.len())
            .map(|i| self.switch(i).stats.drops_of(reason))
            .sum()
    }

    /// Drops that must be zero in a healthy lossless fabric.
    pub fn lossless_drops(&self) -> u64 {
        self.total_drops_of(DropReason::LosslessOverflow)
    }

    /// Sum of receiver-side RDMA goodput bytes across all servers.
    pub fn total_rdma_goodput(&self) -> u64 {
        self.servers
            .iter()
            .filter(|s| s.kind == ServerKind::Rdma)
            .map(|s| self.world.node::<RdmaHost>(s.sim).total_goodput_bytes())
            .sum()
    }

    /// Drain all RDMA RTT samples collected so far (ps).
    pub fn take_rdma_rtts(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.servers {
            if s.kind == ServerKind::Rdma {
                let host = self.world.node_mut::<RdmaHost>(s.sim);
                out.append(&mut host.stats.rtt_samples_ps);
            }
        }
        out
    }

    /// Drain all TCP RTT samples collected so far (ps).
    pub fn take_tcp_rtts(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.servers {
            if s.kind == ServerKind::Tcp {
                let host = self.world.node_mut::<TcpHost>(s.sim);
                out.append(&mut host.stats.rtt_samples_ps);
            }
        }
        out
    }

    /// Pingmesh scope of a server pair (§5.3's ToR / Podset / DC levels).
    pub fn scope_of(&self, a: ServerId, b: ServerId) -> rocescale_monitor::pingmesh::Scope {
        use rocescale_monitor::pingmesh::Scope;
        if self.same_tor(a, b) {
            Scope::IntraTor
        } else if self.server_pod(a) == self.server_pod(b) {
            Scope::IntraPodset
        } else {
            Scope::IntraDc
        }
    }

    /// Install the RDMA Pingmesh service (§5.3): every RDMA server probes
    /// `fanout` others (512-byte payloads) every `interval`, chosen
    /// round-robin so ToR-, podset- and DC-scope pairs all get coverage.
    /// Returns the probed pairs; collect results with
    /// [`Cluster::pingmesh_report`].
    pub fn install_pingmesh(
        &mut self,
        fanout: usize,
        interval: SimTime,
    ) -> Vec<(ServerId, ServerId)> {
        let servers = self.servers_of_kind(ServerKind::Rdma);
        let mut pairs = Vec::new();
        for (i, a) in servers.iter().enumerate() {
            for k in 1..=fanout {
                let b = servers[(i + k * (servers.len() / (fanout + 1)).max(1)) % servers.len()];
                if b == *a {
                    continue;
                }
                self.connect_qp(
                    *a,
                    b,
                    (20_000 + i * 17 + k) as u16,
                    rocescale_nic::QpApp::Pinger {
                        payload: rocescale_monitor::pingmesh::PROBE_BYTES,
                        interval,
                        start_at: SimTime::from_micros(10 + (i * 13 + k * 7) as u64),
                    },
                    rocescale_nic::QpApp::Echo {
                        reply_len: rocescale_monitor::pingmesh::PROBE_BYTES,
                    },
                );
                pairs.push((*a, b));
            }
        }
        pairs
    }

    /// Aggregate all collected probe RTTs into a Pingmesh report. The
    /// report is bound to the cluster's telemetry hub, so with telemetry
    /// enabled the per-scope percentiles also land in hub snapshots and
    /// exported traces (`pingmesh.{tor,podset,dc}.*`).
    ///
    /// Because a host logs its RTT samples in completion order across all
    /// of its prober QPs, per-pair attribution uses each *prober host's*
    /// dominant scope: hosts whose probes span several scopes contribute
    /// to each (per-QP logs would be the production refinement).
    pub fn pingmesh_report(
        &mut self,
        pairs: &[(ServerId, ServerId)],
    ) -> rocescale_monitor::Pingmesh {
        use rocescale_monitor::pingmesh::ProbeResult;
        let mut pm = rocescale_monitor::Pingmesh::with_hub(self.telemetry.clone());
        for (a, b) in pairs {
            let scope = self.scope_of(*a, *b);
            let samples = std::mem::take(
                &mut self
                    .world
                    .node_mut::<RdmaHost>(self.servers[a.0].sim)
                    .stats
                    .rtt_samples_ps,
            );
            for s in samples {
                pm.record(scope, ProbeResult::Rtt(s));
            }
        }
        pm
    }

    /// Per-switch (name, progress snapshot) for the deadlock detector.
    pub fn switch_snapshots(&self) -> Vec<(String, Snapshot)> {
        (0..self.switches.len())
            .map(|i| {
                let sw = self.switch(i);
                (
                    self.switches[i].name.clone(),
                    Snapshot {
                        tx_pkts: sw.total_data_tx_pkts(),
                        backlog_bytes: sw.lossless_backlog(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_send() {
        // The fleet runner moves builders (or closures that construct
        // them) into worker threads; compile-time proof it stays legal.
        fn assert_send<T: Send>() {}
        assert_send::<ClusterBuilder>();
    }

    #[test]
    fn digest_off_cluster_matches_on_cluster() {
        let run = |mode| {
            let mut c = ClusterBuilder::single_tor(3).seed(5).digest(mode).build();
            let ids = c.all_servers();
            c.connect_qp(
                ids[1],
                ids[0],
                5000,
                QpApp::Saturate {
                    msg_len: 64 * 1024,
                    inflight: 2,
                },
                QpApp::None,
            );
            c.run_for_millis(1);
            (
                c.total_rdma_goodput(),
                c.world.events_processed(),
                c.world.dispatch_digest(),
            )
        };
        let on = run(DigestMode::On);
        let off = run(DigestMode::Off);
        assert_eq!(on.0, off.0, "goodput must not depend on digest mode");
        assert_eq!(on.1, off.1, "event count must not depend on digest mode");
        assert_ne!(on.2, off.2, "off-mode digest stays at the basis");
    }

    #[test]
    fn builds_and_runs_a_small_cluster() {
        let mut c = ClusterBuilder::two_tier(2, 3).seed(9).build();
        assert_eq!(c.server_count(), 6);
        assert_eq!(c.switch_count(), 2 + 2 + 2); // 2 ToR + 2 leaf + 2 spine
        let (a, b) = (ServerId(0), ServerId(3)); // different racks
        assert!(!c.same_tor(a, b));
        c.connect_qp(
            a,
            b,
            5000,
            QpApp::Saturate {
                msg_len: 256 * 1024,
                inflight: 1,
            },
            QpApp::None,
        );
        c.run_for_millis(2);
        assert!(c.total_rdma_goodput() >= 256 * 1024);
        assert_eq!(c.lossless_drops(), 0);
    }

    #[test]
    fn cross_pod_traffic_traverses_spines() {
        let mut c = ClusterBuilder::new(ClosSpec::uniform_40g(2, 1, 2, 2, 2))
            .seed(3)
            .build();
        let pod0 = c
            .all_servers()
            .into_iter()
            .find(|s| c.server_pod(*s) == 0)
            .unwrap();
        let pod1 = c
            .all_servers()
            .into_iter()
            .find(|s| c.server_pod(*s) == 1)
            .unwrap();
        c.connect_qp(
            pod0,
            pod1,
            6000,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 1,
            },
            QpApp::None,
        );
        c.run_for_millis(2);
        assert!(c.total_rdma_goodput() >= 128 * 1024);
        let spine_tx: u64 = c
            .switches_of_tier(Tier::Spine)
            .into_iter()
            .map(|i| c.switch(i).total_tx_pkts())
            .sum();
        assert!(spine_tx > 100, "spines must carry the flow: {spine_tx}");
    }

    #[test]
    fn mixed_rdma_tcp_cluster() {
        let mut c = ClusterBuilder::two_tier(1, 4)
            .server_kind(|i| {
                if i % 2 == 0 {
                    ServerKind::Rdma
                } else {
                    ServerKind::Tcp
                }
            })
            .build();
        assert_eq!(c.servers_of_kind(ServerKind::Rdma).len(), 2);
        assert_eq!(c.servers_of_kind(ServerKind::Tcp).len(), 2);
        let t = c.servers_of_kind(ServerKind::Tcp);
        let (ca, _cb) = c.connect_tcp(
            t[0],
            t[1],
            TcpApp::Saturate { msg_len: 100_000 },
            TcpApp::None,
        );
        c.run_for_millis(5);
        let sent = c.tcp(t[0]).sender_stats(ca).bytes_acked;
        assert!(sent >= 100_000, "TCP stream must flow: {sent}");
    }

    #[test]
    fn fault_profile_injects_storm() {
        let mut c = ClusterBuilder::two_tier(2, 2)
            .faults(FaultProfile::paper_default().storm_at(0, SimTime::from_millis(1)))
            .build();
        let ids = c.all_servers();
        // Traffic toward the stormer piles up behind its paused port.
        c.connect_qp(
            ids[2],
            ids[0],
            5000,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
        c.run_until(SimTime::from_millis(1));
        assert_eq!(
            c.rdma(ids[0]).stats.rx_storm_dropped,
            0,
            "storm must not start early"
        );
        c.run_for_millis(4);
        assert!(
            c.rdma(ids[0]).stats.rx_storm_dropped > 0,
            "stormer must drop its inbound traffic"
        );
        assert!(
            c.rdma(ids[0]).stats.pause_tx > 0,
            "stormer must pause its ToR port"
        );
        let tor_pause_rx: u64 = c
            .switches_of_tier(Tier::Tor)
            .into_iter()
            .map(|i| c.switch(i).stats.pause_rx.iter().sum::<u64>())
            .sum();
        assert!(tor_pause_rx > 0, "ToR must see the storm's pause frames");
    }

    #[test]
    fn dead_server_fault_leaves_incomplete_arp() {
        let mut c = ClusterBuilder::single_tor(2)
            .faults(FaultProfile::paper_default().dead_server(1))
            .build();
        let ids = c.all_servers();
        c.connect_qp(
            ids[0],
            ids[1],
            5000,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 1,
            },
            QpApp::None,
        );
        c.run_for_millis(1);
        // paper_default keeps the §4.2 fix on: lossless packets to the
        // half-resolved server are dropped, not flooded.
        assert!(
            c.total_drops_of(DropReason::IncompleteArpLossless) > 0,
            "traffic to the dead server must hit the incomplete-ARP path"
        );
        assert_eq!(c.total_rdma_goodput(), 0);
    }

    #[test]
    fn scripted_lossless_off_flushes_queued_packets_exactly_once() {
        // A storming NIC pauses its ToR port so lossless packets queue
        // behind it; the scripted SetLossless(off) must flush that queue
        // once — counted once — and never again.
        let mut c = ClusterBuilder::two_tier(2, 2)
            .faults(
                FaultProfile::paper_default()
                    .storm_at(0, SimTime::from_millis(1))
                    .at(
                        SimTime::from_millis(3),
                        ScriptAction::SetLossless {
                            switch: "pod0-tor0".to_string(),
                            prio: 3,
                            on: false,
                        },
                    ),
            )
            .build();
        let ids = c.all_servers();
        c.connect_qp(
            ids[2],
            ids[0],
            5000,
            QpApp::Saturate {
                msg_len: 128 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
        c.run_until(SimTime::from_micros(2_900));
        assert_eq!(
            c.total_drops_of(DropReason::AdminLosslessOff),
            0,
            "no admin flush before the scripted action fires"
        );
        c.run_until(SimTime::from_millis(4));
        let flushed = c.total_drops_of(DropReason::AdminLosslessOff);
        assert!(flushed > 0, "queued lossless packets must be flushed");
        c.run_for_millis(3);
        assert_eq!(
            c.total_drops_of(DropReason::AdminLosslessOff),
            flushed,
            "the flush happens exactly once"
        );
    }

    #[test]
    fn scripted_link_flap_stalls_then_resumes_traffic() {
        let flap_down = SimTime::from_millis(1);
        let flap_up = SimTime::from_millis(2);
        let mut c = ClusterBuilder::single_tor(2)
            .faults(
                FaultProfile::paper_default()
                    .at(
                        flap_down,
                        ScriptAction::ServerLink {
                            server: 1,
                            up: false,
                        },
                    )
                    .at(
                        flap_up,
                        ScriptAction::ServerLink {
                            server: 1,
                            up: true,
                        },
                    ),
            )
            .build();
        let ids = c.all_servers();
        c.connect_qp(
            ids[0],
            ids[1],
            5000,
            QpApp::Saturate {
                msg_len: 64 * 1024,
                inflight: 2,
            },
            QpApp::None,
        );
        c.run_until(flap_down);
        let before = c.total_rdma_goodput();
        assert!(before > 0, "traffic must flow before the flap");
        c.run_until(flap_up);
        let during = c.total_rdma_goodput();
        c.run_for_millis(3);
        let after = c.total_rdma_goodput();
        assert!(
            after > during + 64 * 1024,
            "traffic must resume after re-up: {during} -> {after}"
        );
    }

    #[test]
    fn snapshots_expose_progress() {
        let mut c = ClusterBuilder::single_tor(2).build();
        let s = c.switch_snapshots();
        assert_eq!(s.len(), 3); // tor + leaf + spine
        assert!(s.iter().all(|(_, snap)| snap.tx_pkts == 0));
        let ids = c.all_servers();
        c.connect_qp(
            ids[0],
            ids[1],
            5000,
            QpApp::Saturate {
                msg_len: 65536,
                inflight: 1,
            },
            QpApp::None,
        );
        c.run_for_millis(1);
        let s = c.switch_snapshots();
        assert!(s.iter().any(|(_, snap)| snap.tx_pkts > 0));
    }
}
