//! Measurement behind the decision NOT to split [`Packet`] storage into
//! a struct-of-arrays arena (see `crates/sim/src/arena.rs` and DESIGN.md
//! §Adaptive pacing & sharded observation).
//!
//! Runs the fleet-scale workload single-sharded with the dispatch
//! profiler on and prints per-event-kind handler cost next to the packet
//! width. The numbers to look at:
//!
//! * `Packet` is 88 bytes — at most two cache lines, densely stored
//!   (the PR 8 arena already removed the `Option` tag and side free
//!   list).
//! * Packets cross the arena boundary *by value, whole-struct*: `insert`
//!   writes every field, `remove` reads every field straight into the
//!   handler's `Packet` argument. An SoA split would turn that one
//!   contiguous 88-byte copy into five-plus scattered loads over
//!   distinct arrays — more lines touched per packet, not fewer. No
//!   field is hot separately from the rest while a packet is in flight
//!   (the free list threads through vacant slots' `id`, one line either
//!   way).
//! * Arrival dispatch measures ~180 ns/event, dominated by switch/NIC
//!   logic; the slab copy is noise at that scale.
//!
//! ```text
//! cargo run --release -p rocescale-core --example soa_probe
//! ```
//!
//! [`Packet`]: rocescale_packet::Packet

use rocescale_core::scenarios::fleet_scale;
use rocescale_core::{ClusterBuilder, ExecutionProfile};
use rocescale_nic::QpApp;
use rocescale_sim::{ProfileMode, SimTime};

fn main() {
    let spec = fleet_scale::spec();
    let mut c = ClusterBuilder::new(spec)
        .seed(41)
        .execution(ExecutionProfile::Sharded { shards: 1 })
        .build_sharded();
    c.world_mut(0).set_profile_mode(ProfileMode::On);
    for p in 0..spec.pods {
        let src = c.servers_under(p, 0)[0];
        let dst = c.servers_under((p + 1) % spec.pods, 0)[1];
        c.connect_qp(
            src,
            dst,
            7000 + p as u16,
            QpApp::Burst {
                msg_len: 64 * 1024,
                count: 10,
                inflight: 2,
            },
            QpApp::None,
        );
    }
    c.run_until(SimTime::from_micros(600));
    let p = c.world(0).event_profile();
    println!(
        "packet size: {} B (align {})",
        std::mem::size_of::<rocescale_packet::Packet>(),
        std::mem::align_of::<rocescale_packet::Packet>()
    );
    for (i, k) in rocescale_sim::EventProfile::KINDS.iter().enumerate() {
        let n = p.counts[i].max(1);
        println!(
            "{k}: {} events, {} ns total, {:.0} ns/event",
            p.counts[i],
            p.nanos[i],
            p.nanos[i] as f64 / n as f64
        );
    }
}
