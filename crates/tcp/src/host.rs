//! The TCP host node: connections over the lossy traffic class, with the
//! kernel-latency and CPU-cost models that drive the paper's §1 numbers
//! and Figure 6's TCP tail.

use std::any::Any;
use std::collections::{HashMap, VecDeque};

use rocescale_monitor::{CounterId, MetricsHub, ScopeId, TraceEvent};
use rocescale_packet::{
    EcnCodepoint, EthMeta, Ipv4Meta, MacAddr, Packet, PacketKind, Priority, TcpFlags, TcpSegment,
};
use rocescale_sim::{Ctx, Node, PortId, SimRng, SimTime};

use crate::conn::{ConnConfig, TcpReceiver, TcpSender};

/// Kernel-stack processing delay applied to every message on its way into
/// and out of the socket layer. Sampled per crossing; the tail is what
/// "can be as high as tens of milliseconds" in the paper's words, though
/// the defaults here keep the median in the tens of microseconds the
/// paper's Figure 6 implies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelModel {
    /// Fixed component.
    pub base_ps: u64,
    /// Uniform jitter added on top, `0..jitter_ps`.
    pub jitter_ps: u64,
    /// Probability of a scheduling hiccup.
    pub tail_prob: f64,
    /// Extra delay of a hiccup, uniform in `0..tail_extra_ps`.
    pub tail_extra_ps: u64,
}

impl Default for KernelModel {
    fn default() -> KernelModel {
        KernelModel {
            base_ps: 15_000_000,          // 15 µs through the socket layer
            jitter_ps: 20_000_000,        // +0–20 µs
            tail_prob: 0.005,             // rare scheduler hiccups
            tail_extra_ps: 2_000_000_000, // up to 2 ms
        }
    }
}

impl KernelModel {
    /// Zero-delay model (for isolating transport effects in tests).
    pub fn none() -> KernelModel {
        KernelModel {
            base_ps: 0,
            jitter_ps: 0,
            tail_prob: 0.0,
            tail_extra_ps: 0,
        }
    }

    fn sample(&self, rng: &mut SimRng) -> u64 {
        let mut d = self.base_ps;
        if self.jitter_ps > 0 {
            d += rng.gen_range(0..self.jitter_ps);
        }
        if self.tail_prob > 0.0 && rng.gen_f64() < self.tail_prob {
            d += rng.gen_range(0..self.tail_extra_ps.max(1));
        }
        d
    }
}

/// CPU cost accounting for the kernel stack (§1: sending at 40 Gb/s over
/// 8 connections costs 6% of a 32-core server; receiving costs 12%).
/// Defaults are calibrated to those figures at 1460-byte segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// CPU time billed per transmitted segment.
    pub tx_ps_per_segment: u64,
    /// CPU time billed per received segment.
    pub rx_ps_per_segment: u64,
    /// CPU time billed per message crossing the socket layer.
    pub ps_per_message: u64,
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        // 40 Gb/s at 1460 B payload ≈ 3.37 M segments/s.
        // tx: 6% × 32 cores = 1.92 core-seconds/s ÷ 3.37 M ≈ 570 ns/seg.
        // rx: 12% × 32 cores ≈ 1140 ns/seg.
        CpuModel {
            tx_ps_per_segment: 570_000,
            rx_ps_per_segment: 1_140_000,
            ps_per_message: 2_000_000,
        }
    }
}

/// Per-connection application behaviour (mirrors the RDMA host's apps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TcpApp {
    /// Passive.
    None,
    /// Keep the stream fed with `msg_len`-byte messages.
    Saturate {
        /// Message length, bytes.
        msg_len: u32,
    },
    /// Reply to each delivered message with `reply_len` bytes.
    Echo {
        /// Reply length, bytes.
        reply_len: u32,
    },
    /// Periodic request; RTT measured to the peer's (Echo) reply,
    /// including kernel crossings on both hosts.
    Pinger {
        /// Request payload.
        payload: u32,
        /// Period.
        interval: SimTime,
        /// First request time.
        start_at: SimTime,
    },
}

/// Identifies a connection on its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnHandle(pub u32);

/// TCP host configuration.
#[derive(Debug, Clone)]
pub struct TcpHostConfig {
    /// Name for traces.
    pub name: String,
    /// NIC MAC.
    pub mac: MacAddr,
    /// Host IP.
    pub ip: u32,
    /// Gateway (ToR) MAC.
    pub gateway_mac: MacAddr,
    /// Link rate, b/s.
    pub link_bps: u64,
    /// Traffic class for TCP — a *lossy* class with reserved bandwidth,
    /// isolated from RDMA (§2).
    pub priority: Priority,
    /// Transport parameters.
    pub conn: ConnConfig,
    /// Kernel latency model.
    pub kernel: KernelModel,
    /// CPU cost model.
    pub cpu: CpuModel,
    /// Telemetry bus handle. Disabled by default; when enabled the host
    /// registers its counters under `tcp.{name}.…` and records
    /// retransmission events in the flight recorder.
    pub telemetry: MetricsHub,
}

impl TcpHostConfig {
    /// A 40 GbE TCP host with defaults.
    pub fn new(name: impl Into<String>, id: u32, ip: u32, gateway_mac: MacAddr) -> TcpHostConfig {
        TcpHostConfig {
            name: name.into(),
            mac: MacAddr::from_id(id),
            ip,
            gateway_mac,
            link_bps: 40_000_000_000,
            priority: Priority::new(1),
            conn: ConnConfig::default(),
            kernel: KernelModel::default(),
            cpu: CpuModel::default(),
            telemetry: MetricsHub::disabled(),
        }
    }
}

/// Host counters.
#[derive(Debug, Clone, Default)]
pub struct TcpHostStats {
    /// Segments sent (incl. retransmissions).
    pub segments_tx: u64,
    /// Data segments received.
    pub segments_rx: u64,
    /// Wire bytes sent.
    pub tx_bytes: u64,
    /// Messages delivered to applications.
    pub msgs_delivered: u64,
    /// Fast retransmits across connections.
    pub fast_retransmits: u64,
    /// RTOs across connections.
    pub timeouts: u64,
    /// App-level RTT samples, ps (Pinger).
    pub rtt_samples_ps: Vec<u64>,
    /// Total CPU time billed, ps.
    pub cpu_ps: u64,
}

impl TcpHostStats {
    /// CPU utilization over `elapsed` on a `cores`-core server, in
    /// percent — the §1 metric.
    pub fn cpu_percent(&self, elapsed: SimTime, cores: u32) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        100.0 * self.cpu_ps as f64 / (elapsed.as_ps() as f64 * cores as f64)
    }
}

struct Conn {
    tx: TcpSender,
    rx: TcpReceiver,
    peer_ip: u32,
    local_port: u16,
    peer_port: u16,
    app: TcpApp,
    pending_rtt: VecDeque<u64>,
}

#[derive(Debug, Clone, Copy)]
enum KernelOp {
    /// Message finishing its way down the send path.
    TxMsg { conn: u32, len: u32, tracked: bool },
    /// Message finishing its way up the receive path.
    RxDeliver { conn: u32 },
}

const TOK_PUMP: u64 = 1;
const TOK_RTO: u64 = 2;
const TOK_KERNEL: u64 = 3;
const TOK_APP_BASE: u64 = 1 << 32;

const RTO_SCAN: SimTime = SimTime::from_micros(250);

/// Pre-registered telemetry instrument ids (sentinels when disabled).
struct TcpTele {
    hub: MetricsHub,
    scope: ScopeId,
    segments_tx: CounterId,
    segments_rx: CounterId,
    fast_retransmits: CounterId,
    timeouts: CounterId,
    msgs_delivered: CounterId,
}

impl TcpTele {
    fn register(hub: MetricsHub, name: &str) -> TcpTele {
        TcpTele {
            scope: hub.scope(&format!("tcp.{name}")),
            segments_tx: hub.counter(&format!("tcp.{name}.segments_tx")),
            segments_rx: hub.counter(&format!("tcp.{name}.segments_rx")),
            fast_retransmits: hub.counter(&format!("tcp.{name}.fast_retransmits")),
            timeouts: hub.counter(&format!("tcp.{name}.timeouts")),
            msgs_delivered: hub.counter(&format!("tcp.{name}.msgs_delivered")),
            hub,
        }
    }
}

/// The TCP host node.
pub struct TcpHost {
    cfg: TcpHostConfig,
    conns: Vec<Conn>,
    by_port: HashMap<u16, u32>,
    next_port: u16,
    /// Pure-ACK packets awaiting transmission (tiny, sent first).
    acks: VecDeque<Packet>,
    /// Retransmission segments awaiting transmission.
    rtx: VecDeque<(u32, TcpSegment)>,
    /// Kernel ops in flight: (fire time ps, op).
    kernel_q: Vec<(u64, KernelOp)>,
    rr: usize,
    ip_id: u16,
    /// Telemetry instruments (sentinels when the hub is disabled).
    tele: TcpTele,
    /// Counters.
    pub stats: TcpHostStats,
}

impl TcpHost {
    /// Build a host.
    pub fn new(cfg: TcpHostConfig) -> TcpHost {
        TcpHost {
            tele: TcpTele::register(cfg.telemetry.clone(), &cfg.name),
            cfg,
            conns: Vec::new(),
            by_port: HashMap::new(),
            next_port: 49152,
            acks: VecDeque::new(),
            rtx: VecDeque::new(),
            kernel_q: Vec::new(),
            rr: 0,
            ip_id: 0,
            stats: TcpHostStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TcpHostConfig {
        &self.cfg
    }

    /// Create a (pre-established) connection. Both ends must be created
    /// with matching ports: this end sends from `local_port` to
    /// `peer_port`.
    pub fn add_conn(
        &mut self,
        peer_ip: u32,
        local_port: u16,
        peer_port: u16,
        app: TcpApp,
    ) -> ConnHandle {
        let idx = self.conns.len() as u32;
        self.conns.push(Conn {
            tx: TcpSender::new(self.cfg.conn),
            rx: TcpReceiver::new(),
            peer_ip,
            local_port,
            peer_port,
            app,
            pending_rtt: VecDeque::new(),
        });
        self.by_port.insert(local_port, idx);
        ConnHandle(idx)
    }

    /// Allocate an unused local port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port += 1;
        p
    }

    /// Post a message send through the kernel path.
    pub fn post_message(&mut self, conn: ConnHandle, len: u32, tracked: bool, ctx: &mut Ctx<'_>) {
        let delay = self.cfg.kernel.sample(ctx.rng());
        self.stats.cpu_ps += self.cfg.cpu.ps_per_message;
        let fire = ctx.now().as_ps() + delay;
        self.kernel_q.push((
            fire,
            KernelOp::TxMsg {
                conn: conn.0,
                len,
                tracked,
            },
        ));
        ctx.set_timer_at(SimTime(fire), TOK_KERNEL);
    }

    /// Access a connection's sender stats.
    pub fn sender_stats(&self, conn: ConnHandle) -> crate::conn::SenderStats {
        self.conns[conn.0 as usize].tx.stats
    }

    /// Bytes delivered in order on a connection.
    pub fn bytes_delivered(&self, conn: ConnHandle) -> u64 {
        self.conns[conn.0 as usize].rx.stats.bytes_delivered
    }

    fn segment_packet(&mut self, conn_idx: u32, mut seg: TcpSegment, ctx: &mut Ctx<'_>) -> Packet {
        let c = &self.conns[conn_idx as usize];
        seg.src_port = c.local_port;
        seg.dst_port = c.peer_port;
        let id = self.ip_id;
        self.ip_id = self.ip_id.wrapping_add(1);
        Packet::new(
            ctx.next_packet_id(),
            EthMeta {
                src: self.cfg.mac,
                dst: self.cfg.gateway_mac,
                vlan: None,
            },
            Some(Ipv4Meta {
                src: self.cfg.ip,
                dst: c.peer_ip,
                dscp: self.cfg.priority.value(),
                ecn: EcnCodepoint::NotEct,
                id,
                ttl: 64,
            }),
            PacketKind::Tcp(seg),
            ctx.now().as_ps(),
        )
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let port = PortId(0);
        while !ctx.port_busy(port) && ctx.port_connected(port) {
            // ACKs and retransmissions first.
            if let Some(p) = self.acks.pop_front() {
                self.stats.tx_bytes += p.wire_size() as u64;
                ctx.transmit(port, p).expect("port idle");
                continue;
            }
            if let Some((ci, seg)) = self.rtx.pop_front() {
                self.stats.segments_tx += 1;
                self.tele.hub.incr(self.tele.segments_tx);
                self.stats.cpu_ps += self.cfg.cpu.tx_ps_per_segment;
                let p = self.segment_packet(ci, seg, ctx);
                self.stats.tx_bytes += p.wire_size() as u64;
                ctx.transmit(port, p).expect("port idle");
                continue;
            }
            // New data round-robin over connections.
            let n = self.conns.len();
            if n == 0 {
                return;
            }
            let now_ps = ctx.now().as_ps();
            let mut sent = false;
            for step in 0..n {
                let i = (self.rr + step) % n;
                if let Some(seg) = self.conns[i].tx.next_segment(now_ps) {
                    self.rr = (i + 1) % n;
                    self.stats.segments_tx += 1;
                    self.tele.hub.incr(self.tele.segments_tx);
                    self.stats.cpu_ps += self.cfg.cpu.tx_ps_per_segment;
                    let p = self.segment_packet(i as u32, seg, ctx);
                    self.stats.tx_bytes += p.wire_size() as u64;
                    ctx.transmit(port, p).expect("port idle");
                    sent = true;
                    break;
                }
            }
            if !sent {
                return;
            }
        }
    }

    fn on_segment(&mut self, pkt: &Packet, seg: &TcpSegment, ctx: &mut Ctx<'_>) {
        let Some(&ci) = self.by_port.get(&seg.dst_port) else {
            return; // no such connection (dead server model)
        };
        let now_ps = ctx.now().as_ps();
        if seg.payload > 0 {
            self.stats.segments_rx += 1;
            self.tele.hub.incr(self.tele.segments_rx);
            self.stats.cpu_ps += self.cfg.cpu.rx_ps_per_segment;
            let delivered = {
                let c = &mut self.conns[ci as usize];
                c.rx.on_segment(seg.seq, seg.payload, seg.flags.psh)
            };
            // Pure ACK back.
            let ack_val = self.conns[ci as usize].rx.ack_value();
            let ack_seg = TcpSegment {
                src_port: 0,
                dst_port: 0,
                seq: 0,
                ack: ack_val,
                flags: TcpFlags {
                    syn: false,
                    ack: true,
                    fin: false,
                    psh: false,
                },
                payload: 0,
                ece: false,
            };
            let p = self.segment_packet(ci, ack_seg, ctx);
            self.acks.push_back(p);
            for _ in 0..delivered {
                // Each message climbs the kernel receive path.
                let delay = self.cfg.kernel.sample(ctx.rng());
                self.stats.cpu_ps += self.cfg.cpu.ps_per_message;
                let fire = now_ps + delay;
                self.kernel_q.push((fire, KernelOp::RxDeliver { conn: ci }));
                ctx.set_timer_at(SimTime(fire), TOK_KERNEL);
            }
        }
        if seg.flags.ack {
            let retransmit = self.conns[ci as usize].tx.on_ack(seg.ack, now_ps);
            if retransmit {
                let rseg = self.conns[ci as usize].tx.retransmit_segment(now_ps);
                self.stats.fast_retransmits += 1;
                self.tele.hub.incr(self.tele.fast_retransmits);
                self.tele.hub.trace(
                    now_ps,
                    self.tele.scope,
                    TraceEvent::Rollback {
                        cause: "tcp-fast-retx",
                        to_psn: rseg.seq as u32,
                        pkts: 1,
                    },
                );
                self.rtx.push_back((ci, rseg));
            }
            // Saturating senders keep the stream fed: top the backlog up
            // as acknowledgements drain it.
            if let TcpApp::Saturate { msg_len } = self.conns[ci as usize].app {
                if self.conns[ci as usize].tx.backlog() < 2 * msg_len as u64 {
                    self.post_message(ConnHandle(ci), msg_len, false, ctx);
                }
            }
        }
        let _ = pkt;
        self.pump(ctx);
    }

    fn run_kernel(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().as_ps();
        let mut due: Vec<KernelOp> = Vec::new();
        self.kernel_q.retain(|(fire, op)| {
            if *fire <= now {
                due.push(*op);
                false
            } else {
                true
            }
        });
        for op in due {
            match op {
                KernelOp::TxMsg { conn, len, tracked } => {
                    let c = &mut self.conns[conn as usize];
                    c.tx.write_message(len);
                    if tracked {
                        c.pending_rtt.push_back(now);
                    }
                }
                KernelOp::RxDeliver { conn } => {
                    self.stats.msgs_delivered += 1;
                    self.tele.hub.incr(self.tele.msgs_delivered);
                    let app = self.conns[conn as usize].app;
                    match app {
                        TcpApp::Echo { reply_len } => {
                            self.post_message(ConnHandle(conn), reply_len, false, ctx);
                        }
                        TcpApp::Pinger { .. } => {
                            let c = &mut self.conns[conn as usize];
                            if let Some(sent) = c.pending_rtt.pop_front() {
                                self.stats.rtt_samples_ps.push(now - sent);
                            }
                        }
                        TcpApp::Saturate { .. } | TcpApp::None => {
                            // Fanout repliers also measure.
                            let c = &mut self.conns[conn as usize];
                            if let Some(sent) = c.pending_rtt.pop_front() {
                                self.stats.rtt_samples_ps.push(now - sent);
                            }
                        }
                    }
                }
            }
        }
        self.pump(ctx);
    }
}

impl Node for TcpHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(RTO_SCAN, TOK_RTO);
        for i in 0..self.conns.len() {
            match self.conns[i].app {
                TcpApp::Saturate { msg_len } => {
                    self.post_message(ConnHandle(i as u32), msg_len, false, ctx);
                    self.post_message(ConnHandle(i as u32), msg_len, false, ctx);
                }
                TcpApp::Pinger { start_at, .. } => {
                    ctx.set_timer_at(start_at, TOK_APP_BASE + i as u64);
                }
                TcpApp::Echo { .. } | TcpApp::None => {}
            }
        }
        self.pump(ctx);
    }

    fn on_packet(&mut self, _port: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketKind::Tcp(seg) = pkt.kind {
            self.on_segment(&pkt, &seg, ctx);
        }
        // PFC pauses never reach the TCP class in practice; ignore others.
    }

    fn on_port_idle(&mut self, _port: PortId, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match token {
            TOK_PUMP => self.pump(ctx),
            TOK_RTO => {
                let now = ctx.now().as_ps();
                for i in 0..self.conns.len() {
                    if self.conns[i].tx.check_rto(now) {
                        self.stats.timeouts += 1;
                        self.tele.hub.incr(self.tele.timeouts);
                        let seg = self.conns[i].tx.retransmit_segment(now);
                        self.tele.hub.trace(
                            now,
                            self.tele.scope,
                            TraceEvent::Rollback {
                                cause: "tcp-rto",
                                to_psn: seg.seq as u32,
                                pkts: 1,
                            },
                        );
                        self.rtx.push_back((i as u32, seg));
                    }
                }
                ctx.set_timer(RTO_SCAN, TOK_RTO);
                self.pump(ctx);
            }
            TOK_KERNEL => self.run_kernel(ctx),
            t if t >= TOK_APP_BASE => {
                let i = (t - TOK_APP_BASE) as usize;
                if let TcpApp::Pinger {
                    payload, interval, ..
                } = self.conns[i].app
                {
                    // Saturating sender apps keep the stream non-idle; a
                    // pinger posts one tracked message per period.
                    self.post_message(ConnHandle(i as u32), payload, true, ctx);
                    ctx.set_timer(interval, TOK_APP_BASE + i as u64);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_matches_paper_calibration() {
        // At 40 Gb/s with 1460 B segments for one second:
        let segs_per_sec = 40e9 / (1460.0 * 8.0);
        let cpu = CpuModel::default();
        let mut stats = TcpHostStats {
            cpu_ps: (segs_per_sec * cpu.tx_ps_per_segment as f64) as u64,
            ..Default::default()
        };
        let pct = stats.cpu_percent(SimTime::from_secs(1), 32);
        assert!((5.0..7.5).contains(&pct), "tx cpu {pct}% (paper: 6%)");
        stats.cpu_ps = (segs_per_sec * cpu.rx_ps_per_segment as f64) as u64;
        let pct = stats.cpu_percent(SimTime::from_secs(1), 32);
        assert!((10.0..14.0).contains(&pct), "rx cpu {pct}% (paper: 12%)");
    }

    #[test]
    fn kernel_model_sampling_bounds() {
        let mut rng = SimRng::from_seed(3);
        let m = KernelModel::default();
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= m.base_ps);
            assert!(d <= m.base_ps + m.jitter_ps + m.tail_extra_ps);
        }
        assert_eq!(KernelModel::none().sample(&mut rng), 0);
    }
}
