//! The TCP/IP baseline the paper measures RDMA against.
//!
//! Figure 6 compares a latency-sensitive service running half on TCP and
//! half on RDMA; §1 gives the CPU cost of kernel TCP at 40 Gb/s (6% of a
//! 32-core server to send, 12% to receive). Reproducing those comparisons
//! needs a TCP substrate with the two properties the paper blames for the
//! tail:
//!
//! 1. **Kernel stack latency** ([`host::KernelModel`]): every message
//!    crosses the socket/kernel boundary twice, paying a sampled
//!    processing delay with a heavy-ish tail ("the kernel software
//!    introduces latency that can be as high as tens of milliseconds").
//!    The same path bills CPU time ([`host::CpuModel`]) so the §1
//!    utilization numbers can be regenerated.
//! 2. **Loss recovery by retransmission**: NewReno-style congestion
//!    control ([`conn`]) with fast retransmit and a minimum-RTO floor, so
//!    that rare incast drops turn into multi-millisecond completions —
//!    "TCP must recover from the losses via timeouts or fast
//!    retransmissions, and in both cases, application latency takes a
//!    hit."
//!
//! TCP rides a *lossy* traffic class, isolated from RDMA in a different
//! switch queue with DWRR bandwidth sharing (§2 "Coexistence of RDMA and
//! TCP"), which is how Figure 8 shows TCP latency unaffected by RDMA
//! congestion.
//!
//! Deliberate simplifications: wrap-free 64-bit sequence space, no
//! receive-window dynamics (receivers are never the bottleneck in the
//! reproduced experiments), ack-every-segment (no delayed-ACK timer), and
//! connections are pre-established (no handshake) — none of which the
//! paper's comparisons are sensitive to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod host;

pub use conn::{ConnConfig, TcpReceiver, TcpSender};
pub use host::{ConnHandle, CpuModel, KernelModel, TcpApp, TcpHost, TcpHostConfig};
