//! NewReno-style TCP congestion control as a pure state machine.
//!
//! Sequence numbers are absolute byte offsets (`u64`, wrap-free). The
//! sender regenerates segments from its byte stream, so there is no
//! retransmission queue; message boundaries are carried as a PSH-like
//! flag on the segment that ends each message.

use std::collections::VecDeque;

use rocescale_packet::{TcpFlags, TcpSegment};

/// Connection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnConfig {
    /// Maximum segment payload (1460 for standard Ethernet).
    pub mss: u32,
    /// Initial congestion window, bytes.
    pub init_cwnd: u32,
    /// Minimum retransmission timeout (datacenter-tuned; the incast
    /// literature the paper cites \[35\] tunes exactly this).
    pub min_rto_ps: u64,
    /// Maximum retransmission timeout.
    pub max_rto_ps: u64,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            mss: 1460,
            init_cwnd: 10 * 1460,
            min_rto_ps: 5_000_000_000, // 5 ms
            max_rto_ps: 200_000_000_000,
            dupack_threshold: 3,
        }
    }
}

/// Sender-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Segments transmitted, including retransmissions.
    pub segments_tx: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Bytes acknowledged.
    pub bytes_acked: u64,
}

/// The sending half of a connection.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: ConnConfig,
    /// Bytes the application has written (stream length).
    app_limit: u64,
    /// Message-end offsets not yet acknowledged, ascending.
    boundaries: VecDeque<u64>,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// NewReno fast-recovery: recovery ends when `snd_una` passes this.
    recover: Option<u64>,
    // RTT estimation (RFC 6298).
    srtt_ps: Option<f64>,
    rttvar_ps: f64,
    rto_ps: u64,
    /// Send time of the segment being timed (one-at-a-time Karn timing).
    timing: Option<(u64 /*end_seq*/, u64 /*sent_ps*/)>,
    /// Deadline for the current outstanding data, ps.
    rto_deadline: Option<u64>,
    /// Counters.
    pub stats: SenderStats,
}

impl TcpSender {
    /// New idle sender.
    pub fn new(cfg: ConnConfig) -> TcpSender {
        TcpSender {
            app_limit: 0,
            boundaries: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.init_cwnd as f64,
            ssthresh: f64::MAX,
            dupacks: 0,
            recover: None,
            srtt_ps: None,
            rttvar_ps: 0.0,
            rto_ps: cfg.min_rto_ps.max(10_000_000_000),
            timing: None,
            rto_deadline: None,
            stats: SenderStats::default(),
            cfg,
        }
    }

    /// Queue `len` application bytes ending a message (PSH at its end).
    pub fn write_message(&mut self, len: u32) {
        self.app_limit += len as u64;
        self.boundaries.push_back(self.app_limit);
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Application bytes written but not yet acknowledged (how much
    /// stream is left to work on).
    pub fn backlog(&self) -> u64 {
        self.app_limit - self.snd_una
    }

    /// Current congestion window, bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// True if the window and stream allow sending another segment.
    pub fn can_send(&self) -> bool {
        self.snd_nxt < self.app_limit && self.flight() < self.cwnd as u64
    }

    /// All data sent and acknowledged.
    pub fn is_idle(&self) -> bool {
        self.snd_una == self.app_limit
    }

    /// Produce the next new segment, if window and data allow.
    pub fn next_segment(&mut self, now_ps: u64) -> Option<TcpSegment> {
        if !self.can_send() {
            return None;
        }
        let start = self.snd_nxt;
        let seg = self.make_segment(start);
        self.snd_nxt = start + seg.payload as u64;
        self.after_transmit(start, self.snd_nxt, now_ps);
        Some(seg)
    }

    /// Build the segment starting at `start`: ends at the earliest of
    /// MSS, the next message boundary, or the stream end — so a PSH flag
    /// always sits exactly on a boundary.
    fn make_segment(&self, start: u64) -> TcpSegment {
        let mut end = (start + self.cfg.mss as u64).min(self.app_limit);
        let mut psh = false;
        if let Some(b) = self.boundaries.iter().find(|b| **b > start) {
            if *b <= end {
                end = *b;
                psh = true;
            }
        }
        TcpSegment {
            src_port: 0, // stamped by the host
            dst_port: 0,
            seq: start,
            ack: 0,
            flags: TcpFlags {
                syn: false,
                ack: false,
                fin: false,
                psh,
            },
            payload: (end - start) as u32,
            ece: false,
        }
    }

    fn after_transmit(&mut self, start: u64, end: u64, now_ps: u64) {
        self.stats.segments_tx += 1;
        if self.timing.is_none() {
            self.timing = Some((end, now_ps));
        }
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now_ps + self.rto_ps);
        }
        let _ = start;
    }

    /// Process a cumulative ACK (`ack` = next expected byte at receiver).
    /// Returns true if a retransmission should be pumped immediately.
    pub fn on_ack(&mut self, ack: u64, now_ps: u64) -> bool {
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            self.stats.bytes_acked += acked;
            self.dupacks = 0;
            while self.boundaries.front().is_some_and(|b| *b <= ack) {
                self.boundaries.pop_front();
            }
            // RTT sample (Karn: only for segments never retransmitted —
            // approximated by the one-at-a-time timer).
            if let Some((end, sent)) = self.timing {
                if ack >= end {
                    self.update_rtt((now_ps - sent) as f64);
                    self.timing = None;
                }
            }
            match self.recover {
                Some(r) if ack < r => {
                    // Partial ACK in NewReno: retransmit the next hole,
                    // deflate.
                    self.cwnd =
                        (self.cwnd - acked as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
                    self.rto_deadline = Some(now_ps + self.rto_ps);
                    return true;
                }
                Some(_) => {
                    // Recovery complete.
                    self.recover = None;
                    self.cwnd = self.ssthresh;
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += acked.min(self.cfg.mss as u64) as f64; // slow start
                    } else {
                        self.cwnd += (self.cfg.mss as f64 * self.cfg.mss as f64) / self.cwnd;
                    }
                }
            }
            self.rto_deadline = if self.snd_una < self.snd_nxt {
                Some(now_ps + self.rto_ps)
            } else {
                None
            };
            false
        } else if ack == self.snd_una && self.flight() > 0 {
            self.dupacks += 1;
            if self.dupacks == self.cfg.dupack_threshold && self.recover.is_none() {
                // Fast retransmit + enter recovery.
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.ssthresh + 3.0 * self.cfg.mss as f64;
                self.recover = Some(self.snd_nxt);
                self.timing = None;
                return true;
            }
            if self.recover.is_some() {
                self.cwnd += self.cfg.mss as f64; // inflate per dup
            }
            false
        } else {
            false
        }
    }

    /// The retransmission segment for the first unacked byte.
    pub fn retransmit_segment(&mut self, now_ps: u64) -> TcpSegment {
        let seg = self.make_segment(self.snd_una);
        self.after_transmit(self.snd_una, self.snd_una + seg.payload as u64, now_ps);
        seg
    }

    /// Check the retransmission timer. Returns true if an RTO fired (the
    /// caller should send [`Self::retransmit_segment`]).
    pub fn check_rto(&mut self, now_ps: u64) -> bool {
        match self.rto_deadline {
            Some(d) if now_ps >= d && self.flight() > 0 => {
                self.stats.timeouts += 1;
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.cfg.mss as f64;
                self.recover = None;
                self.dupacks = 0;
                self.timing = None;
                // Exponential backoff.
                self.rto_ps = (self.rto_ps * 2).min(self.cfg.max_rto_ps);
                self.rto_deadline = Some(now_ps + self.rto_ps);
                true
            }
            Some(_) | None => false,
        }
    }

    /// Next RTO deadline, if any data is outstanding.
    pub fn rto_deadline_ps(&self) -> Option<u64> {
        self.rto_deadline
    }

    fn update_rtt(&mut self, sample_ps: f64) {
        match self.srtt_ps {
            None => {
                self.srtt_ps = Some(sample_ps);
                self.rttvar_ps = sample_ps / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ps = 0.75 * self.rttvar_ps + 0.25 * (srtt - sample_ps).abs();
                self.srtt_ps = Some(0.875 * srtt + 0.125 * sample_ps);
            }
        }
        let rto = self.srtt_ps.unwrap() + 4.0 * self.rttvar_ps;
        self.rto_ps = (rto as u64).clamp(self.cfg.min_rto_ps, self.cfg.max_rto_ps);
    }
}

/// Receiver-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// In-order bytes delivered.
    pub bytes_delivered: u64,
    /// Segments that arrived out of order (buffered).
    pub out_of_order: u64,
    /// Exact duplicates discarded.
    pub duplicates: u64,
}

/// The receiving half: cumulative ACK with out-of-order buffering (as a
/// merged interval set) and PSH-boundary message delivery.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Buffered out-of-order byte ranges, disjoint, ascending.
    sack: Vec<(u64, u64)>,
    /// Message boundaries seen (PSH segment ends), ascending.
    boundaries: VecDeque<u64>,
    /// Counters.
    pub stats: ReceiverStats,
}

impl TcpReceiver {
    /// New receiver at offset 0.
    pub fn new() -> TcpReceiver {
        TcpReceiver::default()
    }

    /// Next expected byte (the cumulative ACK value to send).
    pub fn ack_value(&self) -> u64 {
        self.rcv_nxt
    }

    /// Process a data segment `[seq, seq+len)`; `psh` marks a message end
    /// at `seq+len`. Returns the number of complete messages newly
    /// delivered in order.
    pub fn on_segment(&mut self, seq: u64, len: u32, psh: bool) -> u32 {
        let end = seq + len as u64;
        if psh && !self.boundaries.contains(&end) {
            // Insert keeping ascending order (retransmits may repeat).
            let pos = self.boundaries.partition_point(|b| *b < end);
            self.boundaries.insert(pos, end);
        }
        if end <= self.rcv_nxt {
            self.stats.duplicates += 1;
        } else if seq <= self.rcv_nxt {
            self.rcv_nxt = end;
            // Absorb any buffered ranges now contiguous.
            while let Some(&(s, e)) = self.sack.first() {
                if s <= self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.max(e);
                    self.sack.remove(0);
                } else {
                    break;
                }
            }
        } else {
            self.stats.out_of_order += 1;
            self.insert_sack(seq, end);
        }
        // Deliver complete messages.
        let mut delivered = 0;
        while self.boundaries.front().is_some_and(|b| *b <= self.rcv_nxt) {
            self.boundaries.pop_front();
            delivered += 1;
        }
        self.stats.bytes_delivered = self.rcv_nxt;
        delivered
    }

    fn insert_sack(&mut self, s: u64, e: u64) {
        self.sack.push((s, e));
        self.sack.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.sack.len());
        for &(s, e) in self.sack.iter() {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.sack = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConnConfig {
        ConnConfig::default()
    }

    #[test]
    fn in_order_stream_delivers_messages() {
        let mut tx = TcpSender::new(cfg());
        let mut rx = TcpReceiver::new();
        tx.write_message(3000); // 1460+1460+80, PSH on the 80
        tx.write_message(100);
        let mut delivered = 0;
        let mut now = 0;
        while let Some(seg) = tx.next_segment(now) {
            delivered += rx.on_segment(seg.seq, seg.payload, seg.flags.psh);
            tx.on_ack(rx.ack_value(), now);
            now += 1000;
        }
        assert_eq!(delivered, 2);
        assert!(tx.is_idle());
        assert_eq!(rx.stats.bytes_delivered, 3100);
    }

    #[test]
    fn segments_never_cross_message_boundaries() {
        let mut tx = TcpSender::new(cfg());
        tx.write_message(2000);
        tx.write_message(2000);
        let s1 = tx.next_segment(0).unwrap();
        let s2 = tx.next_segment(0).unwrap();
        let s3 = tx.next_segment(0).unwrap();
        assert_eq!(s1.payload, 1460);
        assert_eq!(s2.payload, 540); // stops at the boundary
        assert!(s2.flags.psh, "boundary segment carries PSH");
        assert_eq!(s3.seq, 2000);
    }

    #[test]
    fn cwnd_limits_flight() {
        let mut tx = TcpSender::new(cfg());
        tx.write_message(1 << 20);
        let mut count = 0;
        while tx.next_segment(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 10, "init cwnd = 10 MSS");
        assert!(tx.flight() <= tx.cwnd());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut tx = TcpSender::new(cfg());
        tx.write_message(10 << 20);
        let c0 = tx.cwnd();
        // Drain one full window; the receiver acks every segment (as our
        // receiver model does), each ack growing cwnd by one MSS.
        let mut sent = Vec::new();
        while let Some(s) = tx.next_segment(0) {
            sent.push(s);
        }
        for s in &sent {
            tx.on_ack(s.seq + s.payload as u64, 100_000_000);
        }
        assert!(tx.cwnd() >= 2 * c0 - 1460, "cwnd {} vs {}", tx.cwnd(), c0);
    }

    #[test]
    fn triple_dupack_fast_retransmit() {
        let mut tx = TcpSender::new(cfg());
        let mut rx = TcpReceiver::new();
        tx.write_message(20_000);
        let mut segs = Vec::new();
        while let Some(s) = tx.next_segment(0) {
            segs.push(s);
        }
        // Lose segment 0; deliver 1..=4 → 4 dupacks of 0.
        let mut pump = false;
        for s in &segs[1..5] {
            rx.on_segment(s.seq, s.payload, s.flags.psh);
            pump |= tx.on_ack(rx.ack_value(), 1000);
        }
        assert!(pump, "3rd dupack triggers fast retransmit");
        assert_eq!(tx.stats.fast_retransmits, 1);
        let r = tx.retransmit_segment(2000);
        assert_eq!(r.seq, 0);
        rx.on_segment(r.seq, r.payload, r.flags.psh);
        // Cumulative ack jumps past the buffered range.
        assert_eq!(rx.ack_value(), segs[4].seq + segs[4].payload as u64);
        assert_eq!(rx.stats.out_of_order, 4);
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut tx = TcpSender::new(cfg());
        tx.write_message(1000);
        let _s = tx.next_segment(0).unwrap();
        assert!(!tx.check_rto(1_000_000)); // 1 µs: too early
        let d = tx.rto_deadline_ps().unwrap();
        assert!(tx.check_rto(d));
        assert_eq!(tx.stats.timeouts, 1);
        assert_eq!(tx.cwnd(), 1460, "RTO collapses cwnd to 1 MSS");
        let d2 = tx.rto_deadline_ps().unwrap();
        assert!(d2 - d >= d, "backoff grows the deadline");
    }

    #[test]
    fn rtt_estimation_tightens_rto() {
        let mut tx = TcpSender::new(cfg());
        tx.write_message(1 << 20);
        let mut now = 0u64;
        let mut rx = TcpReceiver::new();
        for _ in 0..50 {
            let Some(s) = tx.next_segment(now) else {
                break;
            };
            now += 100_000_000; // 100 µs RTT
            rx.on_segment(s.seq, s.payload, s.flags.psh);
            tx.on_ack(rx.ack_value(), now);
        }
        // RTO converges to the floor for a steady 100 µs RTT.
        assert_eq!(tx.rto_ps, cfg().min_rto_ps);
    }

    #[test]
    fn receiver_merges_intervals() {
        let mut rx = TcpReceiver::new();
        rx.on_segment(3000, 1000, false);
        rx.on_segment(1000, 1000, false);
        rx.on_segment(2000, 1000, false); // merges 1000..4000
        assert_eq!(rx.ack_value(), 0);
        rx.on_segment(0, 1000, false);
        assert_eq!(rx.ack_value(), 4000);
    }

    #[test]
    fn lossy_stream_eventually_completes() {
        // Deterministic loss of every 7th transmission.
        let mut tx = TcpSender::new(cfg());
        let mut rx = TcpReceiver::new();
        tx.write_message(200_000);
        let mut now = 0u64;
        let mut n = 0u64;
        let mut delivered = 0;
        for _ in 0..100_000 {
            let seg = if tx.check_rto(now) {
                Some(tx.retransmit_segment(now))
            } else {
                tx.next_segment(now)
            };
            if let Some(s) = seg {
                n += 1;
                if !n.is_multiple_of(7) {
                    delivered += rx.on_segment(s.seq, s.payload, s.flags.psh);
                    if tx.on_ack(rx.ack_value(), now) {
                        let r = tx.retransmit_segment(now);
                        delivered += rx.on_segment(r.seq, r.payload, r.flags.psh);
                        tx.on_ack(rx.ack_value(), now);
                    }
                }
            }
            now += 50_000; // 50 ns per tick
            if tx.is_idle() {
                break;
            }
        }
        assert!(tx.is_idle(), "stream must complete under loss");
        assert_eq!(delivered, 1);
        assert_eq!(rx.stats.bytes_delivered, 200_000);
    }
}
