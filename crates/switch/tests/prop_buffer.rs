//! Property tests on the shared-buffer accounting — the invariants PFC
//! correctness rests on. Randomized via the in-tree deterministic
//! `SimRng`, so every failing case replays from its seed.

use rocescale_packet::Priority;
use rocescale_sim::SimRng;
use rocescale_switch::{AdmitOutcome, BufferConfig, SharedBuffer};

const LOSSLESS: [bool; 8] = [false, false, false, true, true, false, false, false];

fn cfg(alpha: Option<f64>) -> BufferConfig {
    BufferConfig {
        total_bytes: 1 << 20,
        headroom_per_port_pg: 16 * 1024,
        alpha,
        xoff_static: 64 * 1024,
        xon_delta: 4 * 1024,
    }
}

#[derive(Debug, Clone)]
struct Op {
    port: u16,
    pg: u8,
    bytes: u64,
    admit: bool, // false = release the oldest admitted packet
}

fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    let n = rng.gen_range(1..400) as usize;
    (0..n)
        .map(|_| Op {
            port: rng.gen_below(4) as u16,
            pg: rng.gen_below(8) as u8,
            bytes: rng.gen_range(64..4096),
            admit: rng.gen_bool(0.5),
        })
        .collect()
}

/// Under any admit/release sequence: shared usage never exceeds
/// capacity, counters never go negative (checked by the release
/// debug asserts), lossless packets are never dropped while their
/// headroom has room, and full release returns the pool to zero.
#[test]
fn accounting_invariants() {
    let mut rng = SimRng::from_seed(0xB0FF_0001);
    for _ in 0..128 {
        let ops = random_ops(&mut rng);
        let dynamic = rng.gen_bool(0.5);
        let alpha = if dynamic { Some(1.0 / 8.0) } else { None };
        let mut buf = SharedBuffer::new(cfg(alpha), 4, &LOSSLESS);
        // (port, pg, bytes, outcome) of live admissions.
        let mut live: Vec<(u16, Priority, u64, AdmitOutcome)> = Vec::new();
        for op in &ops {
            if op.admit {
                let pg = Priority::new(op.pg);
                let lossless = LOSSLESS[pg.index()];
                let outcome = buf.admit(op.port, pg, op.bytes, lossless);
                assert!(
                    buf.shared_used() <= buf.shared_capacity(),
                    "shared pool overflow"
                );
                match outcome {
                    AdmitOutcome::Drop => {
                        if lossless {
                            // Only legal when this counter's headroom is
                            // genuinely exhausted.
                            assert!(
                                buf.occupancy(op.port, pg) + op.bytes
                                    > buf.xoff_threshold() + 16 * 1024
                                    || buf.shared_used() + op.bytes > buf.shared_capacity()
                            );
                        }
                    }
                    o => live.push((op.port, pg, op.bytes, o)),
                }
            } else if let Some((port, pg, bytes, outcome)) = live.pop() {
                buf.release(port, pg, bytes, outcome);
            }
        }
        // Drain everything: the pool must return to exactly zero.
        while let Some((port, pg, bytes, outcome)) = live.pop() {
            buf.release(port, pg, bytes, outcome);
        }
        assert_eq!(buf.shared_used(), 0);
        for port in 0..4u16 {
            for pg in 0..8u8 {
                assert_eq!(buf.occupancy(port, Priority::new(pg)), 0);
            }
        }
    }
}

/// XOFF hysteresis: `below_xon` implies not `over_xoff` (with any
/// positive delta), so the pause state machine can never flap in the
/// same instant.
#[test]
fn xoff_xon_are_disjoint() {
    let mut rng = SimRng::from_seed(0xB0FF_0002);
    for _ in 0..128 {
        let fill = rng.gen_below(300_000);
        let dynamic = rng.gen_bool(0.5);
        let alpha = if dynamic { Some(1.0 / 8.0) } else { None };
        let mut buf = SharedBuffer::new(cfg(alpha), 4, &LOSSLESS);
        let pg = Priority::new(3);
        let mut outcomes = Vec::new();
        let mut admitted = 0u64;
        while admitted < fill {
            match buf.admit(0, pg, 1024, true) {
                AdmitOutcome::Drop => break,
                o => outcomes.push(o),
            }
            admitted += 1024;
        }
        if buf.below_xon(0, pg) {
            assert!(!buf.over_xoff(0, pg));
        }
        for o in outcomes {
            buf.release(0, pg, 1024, o);
        }
    }
}

/// The dynamic threshold is monotone: admitting from another port
/// never raises this port's threshold.
#[test]
fn dynamic_threshold_monotone_decreasing() {
    let mut rng = SimRng::from_seed(0xB0FF_0003);
    for _ in 0..128 {
        let chunks: Vec<u64> = (0..rng.gen_range(1..20))
            .map(|_| rng.gen_range(1024..32_768))
            .collect();
        let mut buf = SharedBuffer::new(cfg(Some(0.25)), 4, &LOSSLESS);
        let mut last = buf.xoff_threshold();
        for (i, c) in chunks.iter().enumerate() {
            let port = (i % 3 + 1) as u16;
            if buf.admit(port, Priority::new(4), *c, true) == AdmitOutcome::Drop {
                break;
            }
            let t = buf.xoff_threshold();
            assert!(t <= last, "threshold rose under load: {t} > {last}");
            last = t;
        }
    }
}
