//! DWRR egress-scheduler tests: the bandwidth isolation between traffic
//! classes that §2's "Coexistence of RDMA and TCP" and Figure 8 depend
//! on.

use std::any::Any;
use std::collections::VecDeque;

use rocescale_packet::{
    EcnCodepoint, EthMeta, Ipv4Meta, MacAddr, Packet, PacketKind, RoceOpcode, RocePacket,
};
use rocescale_sim::{Ctx, LinkSpec, Node, NodeId, PortId, SimTime, World};
use rocescale_switch::{PortRole, Switch, SwitchConfig};

/// A host that blasts pre-built packets of a fixed priority as fast as
/// its link allows, forever.
struct Blaster {
    mac: MacAddr,
    dst_ip: u32,
    dscp: u8,
    udp_src: u16,
    gw: MacAddr,
    sent: u64,
}

impl Blaster {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while !ctx.port_busy(PortId(0)) {
            let pkt = Packet::new(
                ctx.next_packet_id(),
                EthMeta {
                    src: self.mac,
                    dst: self.gw,
                    vlan: None,
                },
                Some(Ipv4Meta {
                    src: 1,
                    dst: self.dst_ip,
                    dscp: self.dscp,
                    ecn: EcnCodepoint::NotEct,
                    id: self.sent as u16,
                    ttl: 64,
                }),
                PacketKind::Roce(RocePacket {
                    opcode: RoceOpcode::Send,
                    dest_qp: 0,
                    src_qp: 0,
                    psn: self.sent as u32,
                    payload: 1024,
                    is_first: false,
                    is_last: false,
                    udp_src: self.udp_src,
                }),
                ctx.now().as_ps(),
            );
            self.sent += 1;
            ctx.transmit(PortId(0), pkt).expect("idle");
        }
    }
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }
    fn on_packet(&mut self, _p: PortId, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
    fn on_port_idle(&mut self, _p: PortId, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that counts received bytes per DSCP.
#[derive(Default)]
struct Sink {
    bytes_per_dscp: [u64; 8],
    order: VecDeque<u8>,
}

impl Node for Sink {
    fn on_packet(&mut self, _p: PortId, pkt: Packet, _ctx: &mut Ctx<'_>) {
        if let Some(ip) = pkt.ip {
            self.bytes_per_dscp[(ip.dscp & 7) as usize] += pkt.wire_size() as u64;
            if self.order.len() < 64 {
                self.order.push_back(ip.dscp);
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build: two blasters (one per class) → switch → one shared sink link.
/// Classes 0 and 1 are both lossy here so PFC does not interfere with
/// pure scheduling.
fn contended_world(weights: [u32; 8], dscp_a: u8, dscp_b: u8) -> (World, NodeId) {
    let sw_mac = MacAddr::from_id(100);
    let sink_mac = MacAddr::from_id(9);
    let mut cfg = SwitchConfig::new("sw", 3);
    cfg.port_roles = vec![PortRole::Server; 3];
    cfg.weights = weights;
    cfg.lossless = [false; 8];
    let mut sw = Switch::new(cfg, sw_mac, 5);
    sw.routes_mut().add_connected(0x0a000000, 24);
    sw.seed_arp(0x0a000009, sink_mac, SimTime::ZERO);
    sw.seed_mac(sink_mac, PortId(2), SimTime::ZERO);
    let mut world = World::new(3);
    let sw_id = world.add_node(Box::new(sw));
    let a = world.add_node(Box::new(Blaster {
        mac: MacAddr::from_id(1),
        dst_ip: 0x0a000009,
        dscp: dscp_a,
        udp_src: 100,
        gw: sw_mac,
        sent: 0,
    }));
    let b = world.add_node(Box::new(Blaster {
        mac: MacAddr::from_id(2),
        dst_ip: 0x0a000009,
        dscp: dscp_b,
        udp_src: 200,
        gw: sw_mac,
        sent: 0,
    }));
    let sink = world.add_node(Box::new(Sink::default()));
    world.connect(a, PortId(0), sw_id, PortId(0), LinkSpec::server_40g());
    world.connect(b, PortId(0), sw_id, PortId(1), LinkSpec::server_40g());
    world.connect(sink, PortId(0), sw_id, PortId(2), LinkSpec::server_40g());
    (world, sink)
}

#[test]
fn equal_weights_share_equally() {
    let (mut w, sink) = contended_world([1; 8], 1, 2);
    w.run_until(SimTime::from_millis(3));
    let s = w.node::<Sink>(sink);
    let (a, b) = (s.bytes_per_dscp[1] as f64, s.bytes_per_dscp[2] as f64);
    let ratio = a / b;
    assert!((0.95..1.05).contains(&ratio), "1:1 weights gave {ratio}");
}

#[test]
fn weighted_shares_follow_weights() {
    let mut weights = [1u32; 8];
    weights[1] = 3; // class 1 gets 3× class 2
    let (mut w, sink) = contended_world(weights, 1, 2);
    w.run_until(SimTime::from_millis(3));
    let s = w.node::<Sink>(sink);
    let ratio = s.bytes_per_dscp[1] as f64 / s.bytes_per_dscp[2] as f64;
    assert!((2.6..3.4).contains(&ratio), "3:1 weights gave {ratio}");
}

/// No starvation: even a weight-1 class against a weight-7 class gets
/// service interleaved at packet granularity, not in giant bursts.
#[test]
fn low_weight_class_is_not_starved() {
    let mut weights = [1u32; 8];
    weights[1] = 7;
    let (mut w, sink) = contended_world(weights, 1, 2);
    w.run_until(SimTime::from_millis(1));
    let s = w.node::<Sink>(sink);
    assert!(s.bytes_per_dscp[2] > 0, "weight-1 class starved");
    // Within the first 64 arrivals both classes appear.
    let kinds: std::collections::HashSet<u8> = s.order.iter().copied().collect();
    assert!(kinds.contains(&1) && kinds.contains(&2), "{kinds:?}");
}

/// An idle class costs nothing: a lone sender gets the full link even
/// with 8 configured classes.
#[test]
fn work_conserving() {
    let (mut w, sink) = contended_world([1; 8], 3, 3);
    w.run_until(SimTime::from_millis(2));
    let s = w.node::<Sink>(sink);
    let gbps = s.bytes_per_dscp[3] as f64 * 8.0 / 0.002 / 1e9;
    assert!(gbps > 38.0, "work conservation violated: {gbps} Gb/s");
}
