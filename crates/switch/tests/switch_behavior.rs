//! Behavioural tests for the switch node: forwarding, PFC generation and
//! reaction, flooding, the deadlock fix, ECN, and the storm watchdog.

use std::any::Any;
use std::collections::VecDeque;

use rocescale_packet::{
    EcnCodepoint, EthMeta, Ipv4Meta, MacAddr, Packet, PacketKind, PauseFrame, Priority, RoceOpcode,
    RocePacket,
};
use rocescale_sim::{Ctx, LinkSpec, Node, NodeId, PortId, SimTime, World};
use rocescale_switch::{ClassifyMode, DropReason, EcmpGroup, PortRole, Switch, SwitchConfig};

/// A scriptable host NIC for switch tests: sends a queue of packets as
/// fast as its link (honouring PFC if asked), records what it receives.
struct TestHost {
    mac: MacAddr,
    queue: VecDeque<Packet>,
    honor_pfc: bool,
    paused_until: [SimTime; 8],
    received: Vec<Packet>,
    pause_rx: u64,
    /// Malfunction mode: emit pause frames continuously (§4.3 storm) —
    /// modelled as a max-duration pause refreshed every 100 µs, which
    /// keeps the peer pinned exactly like back-to-back frames would.
    storm: bool,
    storm_armed: bool,
}

const TOK_RESUME_CHECK: u64 = 1;
const TOK_STORM: u64 = 2;

impl TestHost {
    fn new(mac: MacAddr) -> TestHost {
        TestHost {
            mac,
            queue: VecDeque::new(),
            honor_pfc: true,
            paused_until: [SimTime::ZERO; 8],
            received: Vec::new(),
            pause_rx: 0,
            storm: false,
            storm_armed: false,
        }
    }

    fn priority_of(pkt: &Packet) -> usize {
        pkt.ip.map(|ip| (ip.dscp & 7) as usize).unwrap_or(0)
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.storm {
            if !ctx.port_busy(PortId(0)) && !self.storm_armed {
                let pkt = Packet::new(
                    ctx.next_packet_id(),
                    EthMeta {
                        src: self.mac,
                        dst: MacAddr::PAUSE_MULTICAST,
                        vlan: None,
                    },
                    None,
                    PacketKind::Pfc(PauseFrame::pause(Priority::new(3), u16::MAX)),
                    ctx.now().as_ps(),
                );
                let _ = ctx.transmit(PortId(0), pkt);
                self.storm_armed = true;
                ctx.set_timer(SimTime::from_micros(100), TOK_STORM);
            }
            return;
        }
        while !ctx.port_busy(PortId(0)) {
            let Some(pkt) = self.queue.front() else {
                return;
            };
            let prio = Self::priority_of(pkt);
            if self.honor_pfc && self.paused_until[prio] > ctx.now() {
                // Re-check when the pause lapses.
                let until = self.paused_until[prio];
                ctx.set_timer_at(until, TOK_RESUME_CHECK);
                return;
            }
            let pkt = self.queue.pop_front().expect("front checked");
            ctx.transmit(PortId(0), pkt).expect("port checked idle");
        }
    }
}

impl Node for TestHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }
    fn on_packet(&mut self, _port: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketKind::Pfc(f) = pkt.kind {
            self.pause_rx += 1;
            let rate = ctx.port_rate(PortId(0)).unwrap_or(40_000_000_000);
            for (prio, quanta) in f.entries() {
                self.paused_until[prio.index()] = if quanta == 0 {
                    ctx.now()
                } else {
                    ctx.now() + SimTime(rocescale_packet::PfcPauseFrame::quanta_to_ps(quanta, rate))
                };
            }
            self.pump(ctx);
            return;
        }
        self.received.push(pkt);
    }
    fn on_port_idle(&mut self, _port: PortId, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == TOK_STORM {
            self.storm_armed = false;
        }
        self.pump(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[allow(clippy::too_many_arguments)]
fn roce_data(
    id: u64,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: u32,
    dst_ip: u32,
    dscp: u8,
    ip_id: u16,
    payload: u32,
    udp_src: u16,
) -> Packet {
    Packet::new(
        id,
        EthMeta {
            src: src_mac,
            dst: dst_mac,
            vlan: None,
        },
        Some(Ipv4Meta {
            src: src_ip,
            dst: dst_ip,
            dscp,
            ecn: EcnCodepoint::Ect,
            id: ip_id,
            ttl: 64,
        }),
        PacketKind::Roce(RocePacket {
            opcode: RoceOpcode::Send,
            dest_qp: 1,
            src_qp: 1,
            psn: id as u32,
            payload,
            is_first: false,
            is_last: false,
            udp_src,
        }),
        0,
    )
}

const IP_A: u32 = 0x0a000001;
const IP_B: u32 = 0x0a000002;

/// Two hosts on one ToR, L3-connected subnet; B's link is 10× slower so a
/// sustained burst from A must trigger PFC instead of drops (Figure 2).
struct TorPair {
    world: World,
    sw: NodeId,
    a: NodeId,
    b: NodeId,
    sw_mac: MacAddr,
    a_mac: MacAddr,
    b_mac: MacAddr,
}

fn tor_pair(mut cfg: SwitchConfig, slow_receiver: bool) -> TorPair {
    let sw_mac = MacAddr::from_id(100);
    let a_mac = MacAddr::from_id(1);
    let b_mac = MacAddr::from_id(2);
    cfg.port_roles = vec![PortRole::Server, PortRole::Server];
    let mut sw = Switch::new(cfg, sw_mac, 7);
    sw.routes_mut().add_connected(0x0a000000, 24);
    sw.seed_arp(IP_A, a_mac, SimTime::ZERO);
    sw.seed_arp(IP_B, b_mac, SimTime::ZERO);
    sw.seed_mac(a_mac, PortId(0), SimTime::ZERO);
    sw.seed_mac(b_mac, PortId(1), SimTime::ZERO);
    let mut world = World::new(42);
    let sw_id = world.add_node(Box::new(sw));
    let a = world.add_node(Box::new(TestHost::new(a_mac)));
    let b = world.add_node(Box::new(TestHost::new(b_mac)));
    world.connect(a, PortId(0), sw_id, PortId(0), LinkSpec::server_40g());
    let b_rate = if slow_receiver {
        4_000_000_000
    } else {
        40_000_000_000
    };
    world.connect(
        b,
        PortId(0),
        sw_id,
        PortId(1),
        LinkSpec::with_length(b_rate, 2),
    );
    TorPair {
        world,
        sw: sw_id,
        a,
        b,
        sw_mac,
        a_mac,
        b_mac,
    }
}

fn queue_burst(t: &mut TorPair, n: u64, dscp: u8) {
    let (a_mac, sw_mac) = (t.a_mac, t.sw_mac);
    let host = t.world.node_mut::<TestHost>(t.a);
    for i in 0..n {
        host.queue.push_back(roce_data(
            i, a_mac, sw_mac, IP_A, IP_B, dscp, i as u16, 1024, 5000,
        ));
    }
}

#[test]
fn l3_forwarding_delivers() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), false);
    queue_burst(&mut t, 10, 3);
    assert!(t.world.run_until_idle(100_000));
    let b = t.world.node::<TestHost>(t.b);
    assert_eq!(b.received.len(), 10);
    // The switch rewrote MACs and decremented TTL.
    let p = &b.received[0];
    assert_eq!(p.eth.src, t.sw_mac);
    assert_eq!(p.eth.dst, t.b_mac);
    assert_eq!(p.ip.unwrap().ttl, 63);
    let sw = t.world.node::<Switch>(t.sw);
    assert_eq!(sw.stats.total_drops(), 0);
}

/// Figure 2: a lossless class into a slow receiver generates pause frames
/// and zero drops; the sender is throttled, everything arrives.
#[test]
fn pfc_prevents_loss_on_lossless_class() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), true);
    queue_burst(&mut t, 3000, 3); // 3 MB burst into a 12 MB buffer, 4G drain
    assert!(t.world.run_until_idle(10_000_000));
    let b = t.world.node::<TestHost>(t.b);
    assert_eq!(b.received.len(), 3000, "lossless: every packet arrives");
    let a = t.world.node::<TestHost>(t.a);
    assert!(a.pause_rx > 0, "sender must have been paused");
    let sw = t.world.node::<Switch>(t.sw);
    assert_eq!(sw.stats.total_drops(), 0);
    assert!(sw.stats.total_pause_tx() > 0);
    assert!(
        sw.stats.resume_tx.iter().sum::<u64>() > 0,
        "XON resumes sent"
    );
}

/// The same burst in a lossy class drops instead of pausing.
#[test]
fn lossy_class_drops_instead_of_pausing() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), true);
    queue_burst(&mut t, 3000, 0); // priority 0 is lossy
    assert!(t.world.run_until_idle(10_000_000));
    let sw = t.world.node::<Switch>(t.sw);
    assert!(sw.stats.drops_of(DropReason::LossyOverflow) > 0);
    assert_eq!(sw.stats.total_pause_tx(), 0, "no PFC for lossy classes");
    let b = t.world.node::<TestHost>(t.b);
    assert!(b.received.len() < 3000);
    assert!(!b.received.is_empty());
}

/// §4.1 fault injection: drop every packet whose IP ID low byte is 0xff.
#[test]
fn ip_id_filter_drops_1_in_256() {
    let mut cfg = SwitchConfig::new("tor", 2);
    cfg.drop_ip_id_low_byte = Some(0xff);
    let mut t = tor_pair(cfg, false);
    queue_burst(&mut t, 512, 3); // ip_id 0..511 — exactly 2 match 0xff
    assert!(t.world.run_until_idle(1_000_000));
    let sw = t.world.node::<Switch>(t.sw);
    assert_eq!(sw.stats.drops_of(DropReason::InjectedFilter), 2);
    assert_eq!(t.world.node::<TestHost>(t.b).received.len(), 510);
}

/// ECN: a standing queue at the slow egress must CE-mark some ECT packets
/// (DCQCN's congestion-point behaviour).
#[test]
fn ecn_marks_under_queue_buildup() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), true);
    queue_burst(&mut t, 2000, 3);
    assert!(t.world.run_until_idle(10_000_000));
    let sw = t.world.node::<Switch>(t.sw);
    assert!(sw.stats.ecn_marked > 0);
    let b = t.world.node::<TestHost>(t.b);
    let ce = b
        .received
        .iter()
        .filter(|p| p.ip.unwrap().ecn == EcnCodepoint::Ce)
        .count();
    assert_eq!(ce as u64, sw.stats.ecn_marked);
}

/// Unknown MAC-table entry with a live ARP entry floods to every port —
/// the §4.2 deadlock ingredient.
#[test]
fn incomplete_arp_floods() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), false);
    // Kill B's MAC entry (ARP survives): the incomplete-entry state.
    t.world.node_mut::<Switch>(t.sw).evict_mac(t.b_mac);
    queue_burst(&mut t, 5, 3);
    assert!(t.world.run_until_idle(100_000));
    // Flooded copies still reach B (its port is in the flood set).
    let b = t.world.node::<TestHost>(t.b);
    assert_eq!(b.received.len(), 5);
}

/// The paper's fix: with `drop_lossless_on_incomplete_arp`, lossless
/// packets are dropped rather than flooded; lossy packets still flood.
#[test]
fn deadlock_fix_drops_lossless_on_incomplete_arp() {
    let mut cfg = SwitchConfig::new("tor", 2);
    cfg.drop_lossless_on_incomplete_arp = true;
    let mut t = tor_pair(cfg, false);
    t.world.node_mut::<Switch>(t.sw).evict_mac(t.b_mac);
    queue_burst(&mut t, 5, 3); // lossless class
    queue_burst(&mut t, 5, 0); // lossy class
    assert!(t.world.run_until_idle(100_000));
    let sw = t.world.node::<Switch>(t.sw);
    assert_eq!(sw.stats.drops_of(DropReason::IncompleteArpLossless), 5);
    let b = t.world.node::<TestHost>(t.b);
    assert_eq!(b.received.len(), 5, "lossy packets still flooded through");
}

/// §3: VLAN-based PFC forces server ports into trunk mode, which drops the
/// untagged frames PXE boot relies on. DSCP mode forwards them.
#[test]
fn vlan_trunk_mode_breaks_untagged_pxe() {
    let untagged = |id| {
        Packet::new(
            id,
            EthMeta {
                src: MacAddr::from_id(1),
                dst: MacAddr::from_id(2),
                vlan: None,
            },
            None,
            PacketKind::Raw {
                label: 67,
                size: 300,
            }, // a DHCP/PXE-ish frame
            0,
        )
    };
    for (mode, delivered) in [(ClassifyMode::Vlan, 0usize), (ClassifyMode::Dscp, 3usize)] {
        let mut cfg = SwitchConfig::new("tor", 2);
        cfg.classify = mode;
        let mut t = tor_pair(cfg, false);
        for i in 0..3 {
            t.world
                .node_mut::<TestHost>(t.a)
                .queue
                .push_back(untagged(i));
        }
        assert!(t.world.run_until_idle(100_000));
        let b = t.world.node::<TestHost>(t.b);
        assert_eq!(b.received.len(), delivered, "mode {mode:?}");
        if mode == ClassifyMode::Vlan {
            let sw = t.world.node::<Switch>(t.sw);
            assert_eq!(sw.stats.drops_of(DropReason::UntaggedOnTrunk), 3);
        }
    }
}

/// §4.3 switch watchdog: a host stuck in pause-storm mode gets its port's
/// lossless mode disabled (unblocking the fabric) and re-enabled after the
/// storm ends.
#[test]
fn storm_watchdog_disables_and_reenables() {
    let mut cfg = SwitchConfig::new("tor", 2);
    cfg.watchdog.enabled = true;
    cfg.watchdog.disable_after = SimTime::from_millis(5);
    cfg.watchdog.reenable_after = SimTime::from_millis(50);
    cfg.watchdog.poll_every = SimTime::from_millis(1);
    let mut t = tor_pair(cfg, false);
    // B storms from t=0; A keeps sending to B so the egress backlog exists.
    t.world.node_mut::<TestHost>(t.b).storm = true;
    queue_burst(&mut t, 50_000, 3);
    t.world.run_until(SimTime::from_millis(30));
    {
        let sw = t.world.node::<Switch>(t.sw);
        assert!(sw.lossless_disabled(PortId(1)), "watchdog must trip");
        assert!(sw.stats.watchdog_disables >= 1);
        assert!(sw.stats.drops_of(DropReason::WatchdogLosslessOff) > 0);
    }
    // Stop the storm; drain A's queue too so the port can go quiet.
    t.world.node_mut::<TestHost>(t.b).storm = false;
    t.world.node_mut::<TestHost>(t.a).queue.clear();
    t.world.run_until(SimTime::from_millis(200));
    let sw = t.world.node::<Switch>(t.sw);
    assert!(!sw.lossless_disabled(PortId(1)), "watchdog must re-enable");
    assert!(sw.stats.watchdog_reenables >= 1);
}

/// Without the watchdog, the same storm keeps the port paused and the
/// sender ends up paused too (pause propagation toward the source).
#[test]
fn storm_without_watchdog_propagates_pauses() {
    let mut t = tor_pair(SwitchConfig::new("tor", 2), false);
    t.world.node_mut::<TestHost>(t.b).storm = true;
    queue_burst(&mut t, 50_000, 3);
    t.world.run_until(SimTime::from_millis(30));
    let sw = t.world.node::<Switch>(t.sw);
    assert!(sw.stats.total_pause_tx() > 0, "switch pauses the sender");
    let a = t.world.node::<TestHost>(t.a);
    assert!(a.pause_rx > 0, "victim sender is paused");
    let b = t.world.node::<TestHost>(t.b);
    assert!(
        b.received.len() < 50_000,
        "traffic is stuck behind the storm"
    );
}

/// ECMP across two fabric ports: distinct QPs (UDP source ports) spread;
/// one QP sticks to one path.
#[test]
fn ecmp_spreads_qps_across_uplinks() {
    let sw_mac = MacAddr::from_id(100);
    let a_mac = MacAddr::from_id(1);
    let mut cfg = SwitchConfig::new("leaf", 3);
    cfg.port_roles = vec![PortRole::Server, PortRole::Fabric, PortRole::Fabric];
    let mut sw = Switch::new(cfg, sw_mac, 7);
    sw.routes_mut()
        .add(0x0a010000, 24, EcmpGroup::new(vec![PortId(1), PortId(2)]));
    sw.set_peer_mac(PortId(1), MacAddr::from_id(201));
    sw.set_peer_mac(PortId(2), MacAddr::from_id(202));
    let mut world = World::new(1);
    let sw_id = world.add_node(Box::new(sw));
    let a = world.add_node(Box::new(TestHost::new(a_mac)));
    let up1 = world.add_node(Box::new(TestHost::new(MacAddr::from_id(201))));
    let up2 = world.add_node(Box::new(TestHost::new(MacAddr::from_id(202))));
    world.connect(a, PortId(0), sw_id, PortId(0), LinkSpec::server_40g());
    world.connect(up1, PortId(0), sw_id, PortId(1), LinkSpec::tor_leaf_40g());
    world.connect(up2, PortId(0), sw_id, PortId(2), LinkSpec::tor_leaf_40g());
    {
        let host = world.node_mut::<TestHost>(a);
        for i in 0..400u64 {
            // 40 QPs × 10 packets each.
            let udp_src = 5000 + (i % 40) as u16;
            host.queue.push_back(roce_data(
                i, a_mac, sw_mac, IP_A, 0x0a010005, 3, i as u16, 256, udp_src,
            ));
        }
    }
    assert!(world.run_until_idle(1_000_000));
    let r1 = world.node::<TestHost>(up1).received.len();
    let r2 = world.node::<TestHost>(up2).received.len();
    assert_eq!(r1 + r2, 400);
    assert!(r1 > 80 && r2 > 80, "unbalanced: {r1}/{r2}");
    // Per-QP path stability: all packets of one QP on one uplink.
    for up in [up1, up2] {
        let host = world.node::<TestHost>(up);
        for p in &host.received {
            let t = p.five_tuple().unwrap();
            let other = world.node::<TestHost>(if up == up1 { up2 } else { up1 });
            assert!(
                !other.received.iter().any(|q| q.five_tuple().unwrap() == t),
                "QP split across paths"
            );
        }
    }
    // The repeated five-tuples were served by the flow-decision cache:
    // 40 QPs → 40 misses (first packet of each), the rest hits.
    let stats = world.node::<Switch>(sw_id).flow_cache_stats();
    assert_eq!(stats.hits + stats.misses, 400);
    assert!(stats.hits >= 300, "cache barely used: {stats:?}");
}

/// A route change through `routes_mut` must flush the flow-decision
/// cache: flows that cached an ECMP pick on the old table follow the new
/// table immediately, not their stale cached port.
#[test]
fn flow_cache_invalidated_on_route_change() {
    let sw_mac = MacAddr::from_id(100);
    let a_mac = MacAddr::from_id(1);
    let mut cfg = SwitchConfig::new("leaf", 3);
    cfg.port_roles = vec![PortRole::Server, PortRole::Fabric, PortRole::Fabric];
    let mut sw = Switch::new(cfg, sw_mac, 7);
    sw.routes_mut()
        .add(0x0a010000, 24, EcmpGroup::new(vec![PortId(1), PortId(2)]));
    sw.set_peer_mac(PortId(1), MacAddr::from_id(201));
    sw.set_peer_mac(PortId(2), MacAddr::from_id(202));
    let mut world = World::new(1);
    let sw_id = world.add_node(Box::new(sw));
    let a = world.add_node(Box::new(TestHost::new(a_mac)));
    let up1 = world.add_node(Box::new(TestHost::new(MacAddr::from_id(201))));
    let up2 = world.add_node(Box::new(TestHost::new(MacAddr::from_id(202))));
    world.connect(a, PortId(0), sw_id, PortId(0), LinkSpec::server_40g());
    world.connect(up1, PortId(0), sw_id, PortId(1), LinkSpec::tor_leaf_40g());
    world.connect(up2, PortId(0), sw_id, PortId(2), LinkSpec::tor_leaf_40g());
    let enqueue = |world: &mut World, base: u64| {
        let host = world.node_mut::<TestHost>(a);
        for i in 0..100u64 {
            let udp_src = 5000 + (i % 10) as u16; // 10 QPs, 10 packets each
            host.queue.push_back(roce_data(
                base + i,
                a_mac,
                sw_mac,
                IP_A,
                0x0a010005,
                3,
                i as u16,
                256,
                udp_src,
            ));
        }
    };
    enqueue(&mut world, 0);
    assert!(world.run_until_idle(1_000_000));
    let warm = world.node::<Switch>(sw_id).flow_cache_stats();
    assert!(warm.hits > 0, "cache never hit during warmup: {warm:?}");
    let before1 = world.node::<TestHost>(up1).received.len();
    let before2 = world.node::<TestHost>(up2).received.len();
    assert!(
        before1 > 0 && before2 > 0,
        "ECMP imbalance: {before1}/{before2}"
    );
    // Reroute: a /32 for the destination via uplink 2 only. `routes_mut`
    // must flush every cached decision, including flows pinned to port 1.
    world
        .node_mut::<Switch>(sw_id)
        .routes_mut()
        .add(0x0a010005, 32, EcmpGroup::single(PortId(2)));
    enqueue(&mut world, 1000);
    world.schedule_timer(world.now(), a, TOK_RESUME_CHECK);
    assert!(world.run_until_idle(1_000_000));
    let after1 = world.node::<TestHost>(up1).received.len();
    let after2 = world.node::<TestHost>(up2).received.len();
    assert_eq!(after1, before1, "stale cached decision used after reroute");
    assert_eq!(after2, before2 + 100, "reroute did not take effect");
    let stats = world.node::<Switch>(sw_id).flow_cache_stats();
    assert!(stats.invalidations >= 1, "no flush recorded: {stats:?}");
}
