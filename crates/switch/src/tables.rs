//! The ToR switch's two L2/L3 resolution tables and their disparate
//! timeouts (§4.2).
//!
//! "The typical timeout values for the ARP and MAC tables are very
//! different: 4 hours and 5 minutes, respectively. … Such disparate
//! timeout values can lead to an 'incomplete' ARP entry — i.e. a MAC
//! address is present in the ARP table, but there is no entry in the MAC
//! address table for that MAC address." The standard switch response is to
//! flood — which, combined with PFC, builds the deadlock of Figure 4.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use rocescale_packet::MacAddr;
use rocescale_sim::{PortId, SimTime};

/// Multiply-mix hasher for the small fixed-width keys these tables use
/// (`u32` IPs, 6-byte MACs). Both lookups sit on the per-packet L2/L3
/// resolution path of every ToR, where SipHash's per-call setup is pure
/// overhead; these keys need mixing, not DoS resistance — the simulator
/// generates them itself.
#[derive(Debug, Default)]
pub struct IntHasher(u64);

impl std::hash::Hasher for IntHasher {
    fn finish(&self) -> u64 {
        // fmix64 (MurmurHash3 finalizer): full avalanche over the
        // accumulated key bits.
        let mut x = self.0;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 ^= (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<IntHasher>>;

#[derive(Debug, Clone, Copy)]
struct Timestamped<T> {
    value: T,
    refreshed: SimTime,
}

/// The L2 MAC-address table: MAC → physical port, hardware-learned from
/// source addresses, short timeout (~5 min).
#[derive(Debug, Clone)]
pub struct MacTable {
    entries: FastMap<MacAddr, Timestamped<PortId>>,
    timeout: SimTime,
}

impl MacTable {
    /// Create with the given entry timeout.
    pub fn new(timeout: SimTime) -> MacTable {
        MacTable {
            entries: FastMap::default(),
            timeout,
        }
    }

    /// Hardware learning: note that a frame from `mac` arrived on `port`.
    pub fn learn(&mut self, mac: MacAddr, port: PortId, now: SimTime) {
        self.entries.insert(
            mac,
            Timestamped {
                value: port,
                refreshed: now,
            },
        );
    }

    /// Look up the port for `mac`; entries past their timeout are dead
    /// (lazily expired).
    pub fn lookup(&self, mac: MacAddr, now: SimTime) -> Option<PortId> {
        self.entries
            .get(&mac)
            .filter(|e| now.saturating_sub(e.refreshed) < self.timeout)
            .map(|e| e.value)
    }

    /// Remove an entry (test/scenario helper: simulates timeout of a dead
    /// server's MAC while its ARP entry survives).
    pub fn evict(&mut self, mac: MacAddr) {
        self.entries.remove(&mac);
    }

    /// Number of live entries at `now`.
    pub fn len(&self, now: SimTime) -> usize {
        self.entries
            .values()
            .filter(|e| now.saturating_sub(e.refreshed) < self.timeout)
            .count()
    }

    /// True if no live entries at `now`.
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.len(now) == 0
    }
}

/// The L3 ARP table: IP → MAC, maintained by the (CPU-driven) ARP
/// protocol, long timeout (~4 h).
#[derive(Debug, Clone)]
pub struct ArpTable {
    entries: FastMap<u32, Timestamped<MacAddr>>,
    timeout: SimTime,
}

impl ArpTable {
    /// Create with the given entry timeout.
    pub fn new(timeout: SimTime) -> ArpTable {
        ArpTable {
            entries: FastMap::default(),
            timeout,
        }
    }

    /// Insert/refresh a mapping (from an ARP reply, or scenario setup).
    pub fn insert(&mut self, ip: u32, mac: MacAddr, now: SimTime) {
        self.entries.insert(
            ip,
            Timestamped {
                value: mac,
                refreshed: now,
            },
        );
    }

    /// Look up the MAC for `ip` (lazily expired).
    pub fn lookup(&self, ip: u32, now: SimTime) -> Option<MacAddr> {
        self.entries
            .get(&ip)
            .filter(|e| now.saturating_sub(e.refreshed) < self.timeout)
            .map(|e| e.value)
    }

    /// Remove an entry.
    pub fn evict(&mut self, ip: u32) {
        self.entries.remove(&ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_entries_expire() {
        let mut t = MacTable::new(SimTime::from_secs(300));
        let mac = MacAddr::from_id(1);
        t.learn(mac, PortId(3), SimTime::ZERO);
        assert_eq!(t.lookup(mac, SimTime::from_secs(299)), Some(PortId(3)));
        assert_eq!(t.lookup(mac, SimTime::from_secs(300)), None);
    }

    #[test]
    fn mac_learning_refreshes() {
        let mut t = MacTable::new(SimTime::from_secs(300));
        let mac = MacAddr::from_id(1);
        t.learn(mac, PortId(3), SimTime::ZERO);
        t.learn(mac, PortId(5), SimTime::from_secs(200)); // moved + refreshed
        assert_eq!(t.lookup(mac, SimTime::from_secs(400)), Some(PortId(5)));
    }

    /// The §4.2 precondition: ARP outlives MAC, leaving an "incomplete"
    /// entry — IP resolves to a MAC no port claims.
    #[test]
    fn incomplete_arp_window() {
        let mac_t = MacTable::new(SimTime::from_secs(300));
        let mut arp_t = ArpTable::new(SimTime::from_secs(4 * 3600));
        let mut mac_table = mac_t;
        let (ip, mac) = (0x0a000003, MacAddr::from_id(3));
        mac_table.learn(mac, PortId(7), SimTime::ZERO);
        arp_t.insert(ip, mac, SimTime::ZERO);
        // Ten minutes later (server died silently): ARP alive, MAC gone.
        let now = SimTime::from_secs(600);
        assert_eq!(arp_t.lookup(ip, now), Some(mac));
        assert_eq!(mac_table.lookup(mac, now), None);
    }

    #[test]
    fn evict_helpers() {
        let now = SimTime::ZERO;
        let mut m = MacTable::new(SimTime::from_secs(300));
        m.learn(MacAddr::from_id(9), PortId(1), now);
        assert!(!m.is_empty(now));
        m.evict(MacAddr::from_id(9));
        assert!(m.is_empty(now));
        let mut a = ArpTable::new(SimTime::from_secs(100));
        a.insert(5, MacAddr::from_id(9), now);
        a.evict(5);
        assert_eq!(a.lookup(5, now), None);
    }
}
