//! Switch configuration: classification, buffers, PFC, watchdog.

use rocescale_dcqcn::CpParams;
use rocescale_monitor::MetricsHub;
use rocescale_packet::Priority;
use rocescale_sim::SimTime;

/// How the switch classifies packets into priority groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyMode {
    /// VLAN-based PFC (Figure 3(a)): priority from the 802.1Q PCP bits.
    /// Untagged packets land in `untagged_priority` — and server-facing
    /// ports must be in trunk mode for tagged traffic to work at all,
    /// which is what breaks PXE boot (§3).
    Vlan,
    /// DSCP-based PFC (Figure 3(b)): priority from the IP DSCP field via
    /// [`SwitchConfig::dscp_to_priority`]. No VLAN tag needed; packets
    /// survive L3 routing across subnets.
    Dscp,
}

/// What a port connects to; drives watchdog scope, trunk semantics, and
/// the flood-copy drop rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortRole {
    /// Connects to a server NIC.
    #[default]
    Server,
    /// Connects to another switch (router port). Flooded copies that land
    /// on a router port are dropped when they reach the head of the
    /// egress queue — their destination MAC matches no next hop (the §4.2
    /// example's "drop … once they are at the head of the queue since the
    /// destination MAC does not match").
    Fabric,
}

/// Buffer sizing and PFC thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferConfig {
    /// Total packet buffer (the paper's ToR/Leaf ASICs: 9 MB or 12 MB).
    pub total_bytes: u64,
    /// Per-(port, lossless-PG) headroom reservation, bytes. Sized by
    /// [`BufferConfig::headroom_for`] from cable length and MTU.
    pub headroom_per_port_pg: u64,
    /// If set, dynamic buffer sharing: XOFF threshold =
    /// `alpha × unallocated shared buffer` (the §6.2 α parameter:
    /// 1/16 good, 1/64 caused the incident). If `None`, the static
    /// `xoff_static` threshold applies.
    pub alpha: Option<f64>,
    /// Static XOFF threshold per (port, PG), bytes (used when `alpha` is
    /// `None`).
    pub xoff_static: u64,
    /// Hysteresis: XON fires when the ingress counter falls below
    /// `xoff_threshold - xon_delta` (clamped at ≥ 0).
    pub xon_delta: u64,
}

impl BufferConfig {
    /// The 802.1Qbb worst-case headroom for one (port, PG): two MTUs (one
    /// in flight each way) + round-trip propagation + the peer's response
    /// time, all converted to bytes at line rate.
    pub fn headroom_for(rate_bps: u64, cable_meters: u32, mtu_bytes: u32) -> u64 {
        let rtt_ps = 2 * cable_meters as u64 * rocescale_sim::PROPAGATION_PS_PER_METER;
        // Response time: one max-size frame serialization + PFC frame.
        let resp_ps = rocescale_sim::serialization_ps(mtu_bytes + 64, rate_bps);
        let wire_ps = rtt_ps + resp_ps;
        let wire_bytes = (wire_ps as u128 * rate_bps as u128 / 8 / 1_000_000_000_000) as u64;
        wire_bytes + 2 * mtu_bytes as u64
    }

    /// The paper's shallow-buffer ToR defaults: 12 MB shared buffer,
    /// dynamic sharing at α = 1/16, headroom for 300 m at 40 GbE.
    pub fn tor_defaults() -> BufferConfig {
        BufferConfig {
            total_bytes: 12 << 20,
            headroom_per_port_pg: BufferConfig::headroom_for(40_000_000_000, 300, 1120),
            alpha: Some(1.0 / 16.0),
            xoff_static: 256 * 1024,
            xon_delta: 2 * 1120,
        }
    }
}

/// The switch-side NIC-PFC-storm watchdog (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Enabled?
    pub enabled: bool,
    /// How long a server-facing egress port must be continuously paused
    /// with undrainable queued packets before lossless mode is disabled.
    pub disable_after: SimTime,
    /// How long after pause frames stop before lossless mode is
    /// re-enabled (the paper's default: 200 ms).
    pub reenable_after: SimTime,
    /// Poll period of the watchdog scan.
    pub poll_every: SimTime,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            enabled: false,
            disable_after: SimTime::from_millis(10),
            reenable_after: SimTime::from_millis(200),
            poll_every: SimTime::from_millis(1),
        }
    }
}

/// Complete switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Human-readable name for traces and monitoring.
    pub name: String,
    /// Number of ports.
    pub ports: u16,
    /// Role of each port (defaults to `Server` if the vec is short).
    pub port_roles: Vec<PortRole>,
    /// Classification mode.
    pub classify: ClassifyMode,
    /// DSCP value → priority map (identity on the low 3 bits by default,
    /// mirroring the paper's "we simply map DSCP value i to PFC priority
    /// i").
    pub dscp_to_priority: fn(u8) -> Priority,
    /// Priority for untagged packets under VLAN mode / non-IP packets
    /// under DSCP mode.
    pub untagged_priority: Priority,
    /// Which priorities are lossless (PFC-protected). The paper can
    /// afford exactly two on shallow-buffer switches (§2).
    pub lossless: [bool; Priority::COUNT],
    /// Buffer and threshold configuration.
    pub buffer: BufferConfig,
    /// ECN marking (DCQCN CP) per priority: `Some` enables marking with
    /// those RED parameters on the egress queue of that priority.
    pub ecn: [Option<CpParams>; Priority::COUNT],
    /// DWRR scheduling weight per priority (0 = only served when all
    /// positive-weight queues are empty).
    pub weights: [u32; Priority::COUNT],
    /// MAC address table entry timeout (paper: ~5 minutes).
    pub mac_timeout: SimTime,
    /// ARP table entry timeout (paper: ~4 hours).
    pub arp_timeout: SimTime,
    /// The §4.2 deadlock fix: drop lossless packets whose ARP entry is
    /// incomplete (IP→MAC known, MAC→port unknown) instead of flooding.
    pub drop_lossless_on_incomplete_arp: bool,
    /// Switch-side PFC storm watchdog.
    pub watchdog: WatchdogConfig,
    /// Fault injection for §4.1: drop any data packet whose IP ID has
    /// this low byte (the paper's switch was "configured to drop any
    /// packet with the least significant byte of IP ID equals to 0xff").
    pub drop_ip_id_low_byte: Option<u8>,
    /// §8.1 future-work ablation: spray packets over ECMP members
    /// round-robin per packet instead of pinning each five-tuple to one
    /// path. Raises utilization and destroys in-order delivery — the
    /// trade-off the paper leaves open ("How to make these designs work
    /// for RDMA in the lossless network context will be an interesting
    /// challenge").
    pub per_packet_spraying: bool,
    /// Telemetry bus handle. Disabled by default; when enabled the switch
    /// registers its counters under `switch.{name}.…` and feeds the
    /// flight recorder (drops, pauses, watchdog trips).
    pub telemetry: MetricsHub,
}

fn identity_dscp(d: u8) -> Priority {
    Priority::new(d & 0x7)
}

impl SwitchConfig {
    /// A DSCP-mode switch with the paper's recommended settings.
    pub fn new(name: impl Into<String>, ports: u16) -> SwitchConfig {
        SwitchConfig {
            name: name.into(),
            ports,
            port_roles: Vec::new(),
            classify: ClassifyMode::Dscp,
            dscp_to_priority: identity_dscp,
            untagged_priority: Priority::new(0),
            lossless: [false, false, false, true, true, false, false, false],
            buffer: BufferConfig::tor_defaults(),
            ecn: [
                None,
                None,
                None,
                Some(CpParams::default()),
                Some(CpParams::default()),
                None,
                None,
                None,
            ],
            weights: [1; 8],
            mac_timeout: SimTime::from_secs(300),
            arp_timeout: SimTime::from_secs(4 * 3600),
            drop_lossless_on_incomplete_arp: false,
            watchdog: WatchdogConfig::default(),
            drop_ip_id_low_byte: None,
            per_packet_spraying: false,
            telemetry: MetricsHub::disabled(),
        }
    }

    /// Role of `port`.
    pub fn role(&self, port: u16) -> PortRole {
        self.port_roles
            .get(port as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Is `prio` a lossless class?
    pub fn is_lossless(&self, prio: Priority) -> bool {
        self.lossless[prio.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headroom_scales_with_distance() {
        let near = BufferConfig::headroom_for(40_000_000_000, 2, 1120);
        let far = BufferConfig::headroom_for(40_000_000_000, 300, 1120);
        assert!(far > near);
        // 300 m at 40G: RTT 3 µs = 15 kB wire + 2 MTU + response; ballpark
        // tens of kB — the reason shallow-buffer switches can afford only
        // two lossless classes (§2).
        assert!(far > 15_000 && far < 40_000, "far = {far}");
    }

    #[test]
    fn defaults_match_paper() {
        let c = SwitchConfig::new("tor0", 32);
        assert_eq!(c.classify, ClassifyMode::Dscp);
        assert_eq!(c.lossless.iter().filter(|l| **l).count(), 2);
        assert_eq!(c.mac_timeout, SimTime::from_secs(300));
        assert_eq!(c.arp_timeout, SimTime::from_secs(14_400));
        assert!((c.buffer.alpha.unwrap() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn identity_dscp_map() {
        let c = SwitchConfig::new("s", 4);
        assert_eq!((c.dscp_to_priority)(3), Priority::new(3));
        assert_eq!((c.dscp_to_priority)(11), Priority::new(3));
    }
}
