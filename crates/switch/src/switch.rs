//! The switch [`Node`]: ingress pipeline, egress scheduling, PFC
//! generation/reaction, flooding, and the storm watchdog.

use std::any::Any;
use std::collections::VecDeque;

use rocescale_dcqcn::CpState;
use rocescale_monitor::{CounterId, HopRecord, MetricsHub, ScopeId, TraceEvent};
use rocescale_packet::{
    EcnCodepoint, FiveTuple, MacAddr, Packet, PacketKind, PauseFrame, PfcPauseFrame, Priority,
};
use rocescale_sim::{Ctx, Node, PortId, SimTime, TxError};

use crate::buffer::{AdmitOutcome, SharedBuffer};
use crate::config::{ClassifyMode, PortRole, SwitchConfig};
use crate::routing::{NextHop, RouteTable};
use crate::tables::{ArpTable, MacTable};

/// Why a packet was dropped. Every drop in the switch is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Lossy class over its buffer threshold (normal congestion loss).
    LossyOverflow,
    /// Lossless packet exceeded its headroom — a configuration failure;
    /// asserted zero in every PFC-correct experiment.
    LosslessOverflow,
    /// No route for the destination IP.
    NoRoute,
    /// Directly-connected destination with no ARP entry at all.
    ArpMiss,
    /// The §4.2 fix firing: lossless packet whose ARP entry is incomplete
    /// (MAC known, port unknown) dropped instead of flooded.
    IncompleteArpLossless,
    /// Flooded copy reaching the head of a fabric-port egress queue
    /// ("destination MAC does not match", Figure 4 step 1).
    FloodCopyAtFabricHead,
    /// TTL expired.
    TtlExpired,
    /// The §4.1 fault-injection filter (IP ID low byte match).
    InjectedFilter,
    /// Untagged data packet arriving at a trunk-mode port under
    /// VLAN-based PFC (the PXE-boot failure, §3).
    UntaggedOnTrunk,
    /// Lossless packet to/from a port whose lossless mode the storm
    /// watchdog disabled (§4.3).
    WatchdogLosslessOff,
    /// Queued lossless packet flushed because an operator (fault script)
    /// turned the priority's lossless mode off at runtime
    /// ([`Switch::set_lossless`]).
    AdminLosslessOff,
}

impl DropReason {
    /// Stable name, used as the telemetry counter leaf and flight-recorder
    /// reason string.
    pub fn name(&self) -> &'static str {
        match self {
            DropReason::LossyOverflow => "LossyOverflow",
            DropReason::LosslessOverflow => "LosslessOverflow",
            DropReason::NoRoute => "NoRoute",
            DropReason::ArpMiss => "ArpMiss",
            DropReason::IncompleteArpLossless => "IncompleteArpLossless",
            DropReason::FloodCopyAtFabricHead => "FloodCopyAtFabricHead",
            DropReason::TtlExpired => "TtlExpired",
            DropReason::InjectedFilter => "InjectedFilter",
            DropReason::UntaggedOnTrunk => "UntaggedOnTrunk",
            DropReason::WatchdogLosslessOff => "WatchdogLosslessOff",
            DropReason::AdminLosslessOff => "AdminLosslessOff",
        }
    }
}

const DROP_REASONS: [DropReason; 11] = [
    DropReason::LossyOverflow,
    DropReason::LosslessOverflow,
    DropReason::NoRoute,
    DropReason::ArpMiss,
    DropReason::IncompleteArpLossless,
    DropReason::FloodCopyAtFabricHead,
    DropReason::TtlExpired,
    DropReason::InjectedFilter,
    DropReason::UntaggedOnTrunk,
    DropReason::WatchdogLosslessOff,
    DropReason::AdminLosslessOff,
];

/// Switch counters, the ground truth the monitoring crate collects (§5.2:
/// "we collect packets and bytes been sent and received per port per
/// priority, packet drops at the ingress ports, and packet drops at the
/// egress queues").
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Packets received per port.
    pub rx_pkts: Vec<u64>,
    /// Packets transmitted per port.
    pub tx_pkts: Vec<u64>,
    /// Bytes transmitted per port.
    pub tx_bytes: Vec<u64>,
    /// Data bytes transmitted per priority (across ports).
    pub tx_bytes_per_prio: [u64; Priority::COUNT],
    /// PFC pause frames sent per port (XOFF only, not resumes).
    pub pause_tx: Vec<u64>,
    /// PFC resume (XON) frames sent per port.
    pub resume_tx: Vec<u64>,
    /// PFC pause frames received per port (XOFF only).
    pub pause_rx: Vec<u64>,
    /// Drops by reason.
    pub drops: [u64; DROP_REASONS.len()],
    /// ECN CE marks applied.
    pub ecn_marked: u64,
    /// Peak egress queue depth in bytes, per port (any priority).
    pub peak_egress_bytes: Vec<u64>,
    /// Times the watchdog disabled lossless mode on a port.
    pub watchdog_disables: u64,
    /// Times the watchdog re-enabled lossless mode on a port.
    pub watchdog_reenables: u64,
}

impl SwitchStats {
    fn new(ports: usize) -> SwitchStats {
        SwitchStats {
            rx_pkts: vec![0; ports],
            tx_pkts: vec![0; ports],
            tx_bytes: vec![0; ports],
            pause_tx: vec![0; ports],
            resume_tx: vec![0; ports],
            pause_rx: vec![0; ports],
            peak_egress_bytes: vec![0; ports],
            ..SwitchStats::default()
        }
    }

    /// Count a drop.
    pub fn drop(&mut self, reason: DropReason) {
        let i = DROP_REASONS
            .iter()
            .position(|r| *r == reason)
            .expect("known reason");
        self.drops[i] += 1;
    }

    /// Read a drop counter.
    pub fn drops_of(&self, reason: DropReason) -> u64 {
        let i = DROP_REASONS
            .iter()
            .position(|r| *r == reason)
            .expect("known reason");
        self.drops[i]
    }

    /// Sum of all drops.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Total XOFF pause frames sent.
    pub fn total_pause_tx(&self) -> u64 {
        self.pause_tx.iter().sum()
    }

    /// Total XOFF pause frames received.
    pub fn total_pause_rx(&self) -> u64 {
        self.pause_rx.iter().sum()
    }
}

/// A packet queued at an egress port, remembering its ingress accounting.
#[derive(Debug, Clone)]
struct QueuedPkt {
    pkt: Packet,
    /// (ingress port, PG, where the bytes were counted) — `None` for
    /// self-originated frames.
    acct: Option<(PortId, Priority, AdmitOutcome)>,
    /// This is a flood copy (dropped at the head of fabric-port queues).
    flood_copy: bool,
}

/// DWRR quantum per weight unit, bytes.
const DWRR_QUANTUM: u64 = 1600;

/// A queued PFC control frame, stored as a compact descriptor rather
/// than a full [`Packet`]. The packet id is allocated when the frame is
/// *queued* (so the global id sequence — and with it every dispatch
/// digest — matches the old by-value path exactly); the `Packet` itself
/// is materialized once at transmit instead of being copied into and
/// back out of the queue.
#[derive(Debug, Clone, Copy)]
struct CtrlFrame {
    id: u64,
    frame: PauseFrame,
    created_ps: u64,
}

#[derive(Debug, Clone)]
struct EgressPort {
    queues: [VecDeque<QueuedPkt>; Priority::COUNT],
    queue_bytes: [u64; Priority::COUNT],
    /// Cached sum of `queue_bytes` — read on every enqueue (hop records,
    /// peak tracking) and by the heatmap sampler, so it is maintained at
    /// the four mutation sites instead of re-summed eight lanes at a time.
    total: u64,
    /// Control frames (PFC) bypass the data queues entirely.
    ctrl: VecDeque<CtrlFrame>,
    paused_until: [SimTime; Priority::COUNT],
    deficit: [u64; Priority::COUNT],
    rr: usize,
    /// Queue currently in its DWRR service burst.
    serving: Option<usize>,
    /// The packet currently being serialized (buffer released when done).
    in_flight: Option<QueuedPkt>,
}

impl EgressPort {
    fn new() -> EgressPort {
        EgressPort {
            queues: Default::default(),
            queue_bytes: [0; Priority::COUNT],
            total: 0,
            ctrl: VecDeque::new(),
            paused_until: [SimTime::ZERO; Priority::COUNT],
            deficit: [0; Priority::COUNT],
            rr: 0,
            serving: None,
            in_flight: None,
        }
    }

    fn total_bytes(&self) -> u64 {
        debug_assert_eq!(self.total, self.queue_bytes.iter().sum::<u64>());
        self.total
    }

    fn has_lossless_backlog(&self, lossless: &[bool; Priority::COUNT]) -> bool {
        (0..Priority::COUNT).any(|i| lossless[i] && !self.queues[i].is_empty())
    }
}

/// Per-port watchdog bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct WatchdogPort {
    lossless_disabled: bool,
    last_pause_rx: SimTime,
    undrainable_since: Option<SimTime>,
}

// Timer token encoding: top 8 bits = kind.
const TOK_KIND_SHIFT: u64 = 56;
const TOK_KICK: u64 = 1;
const TOK_PAUSE_REFRESH: u64 = 2;
const TOK_WATCHDOG: u64 = 3;
const TOK_ADMIN: u64 = 4;

/// A deferred administrative action on one switch — the switch half of
/// the incident-replay fault-script layer. Actions are parked in the
/// switch by [`Switch::schedule_admin`] and executed by the ordinary
/// timer event whose token the call returns, so a scripted incident is
/// scheduled exactly like any other sim event: deterministic, and
/// invisible to the dispatch digest unless the timer actually fires.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminAction {
    /// Administratively flip the link on `port` (both endpoints). On
    /// re-up the switch restarts its own egress and kicks the peer.
    LinkSet {
        /// Port whose link flips.
        port: PortId,
        /// New administrative state.
        up: bool,
    },
    /// Turn lossless mode for a priority on or off at runtime
    /// ([`Switch::set_lossless`]).
    SetLossless {
        /// Priority class index.
        prio: u8,
        /// New lossless state.
        on: bool,
    },
    /// Rewrite the shared-buffer PFC thresholds — the §6.2
    /// misconfiguration (α silently changing from 1/16 to 1/64) as a
    /// scriptable runtime event.
    SetThresholds {
        /// Dynamic-sharing α, or `None` for static thresholds.
        alpha: Option<f64>,
        /// Static XOFF threshold in bytes (used when `alpha` is `None`).
        xoff_static: u64,
    },
    /// Replace the ECMP group for `prefix/len` mid-run (through
    /// [`Switch::routes_mut`], so the flow cache flushes).
    Reroute {
        /// Route prefix (host byte order).
        prefix: u32,
        /// Prefix length in bits.
        len: u8,
        /// New equal-cost egress ports (must be non-empty).
        ports: Vec<PortId>,
    },
    /// Forget where a MAC lives — the dead-server 5-minute MAC timeout
    /// with the 4-hour ARP entry surviving (§4.2).
    EvictMac {
        /// MAC address to evict.
        mac: MacAddr,
    },
    /// (Re)learn a MAC on a port — a resurrected server's gratuitous
    /// traffic re-populating the table.
    SeedMac {
        /// MAC address to learn.
        mac: MacAddr,
        /// Port the MAC lives behind.
        port: PortId,
    },
}

fn tok_kick(port: PortId) -> u64 {
    (TOK_KICK << TOK_KIND_SHIFT) | port.0 as u64
}
fn tok_refresh(port: PortId, pg: Priority) -> u64 {
    (TOK_PAUSE_REFRESH << TOK_KIND_SHIFT) | ((pg.index() as u64) << 16) | port.0 as u64
}

/// Pre-registered telemetry instrument ids (all sentinels when the hub is
/// disabled, so the hot path pays a null check per site).
struct SwitchTele {
    hub: MetricsHub,
    scope: ScopeId,
    /// Per-port `switch.{name}.port.{p}.pfc.xoff_tx`.
    pause_tx: Vec<CounterId>,
    /// Per-port `…pfc.xon_tx`.
    resume_tx: Vec<CounterId>,
    /// Per-port `…pfc.xoff_rx`.
    pause_rx: Vec<CounterId>,
    /// Per-reason `switch.{name}.drop.{Reason}`.
    drops: [CounterId; DROP_REASONS.len()],
    ecn_marked: CounterId,
    wd_disables: CounterId,
    wd_reenables: CounterId,
}

impl SwitchTele {
    fn register(hub: MetricsHub, name: &str, ports: usize) -> SwitchTele {
        let scope = hub.scope(&format!("switch.{name}"));
        let per_port = |leaf: &str| -> Vec<CounterId> {
            (0..ports)
                .map(|p| hub.counter(&format!("switch.{name}.port.{p}.pfc.{leaf}")))
                .collect()
        };
        let pause_tx = per_port("xoff_tx");
        let resume_tx = per_port("xon_tx");
        let pause_rx = per_port("xoff_rx");
        let drops = DROP_REASONS.map(|r| hub.counter(&format!("switch.{name}.drop.{}", r.name())));
        SwitchTele {
            scope,
            pause_tx,
            resume_tx,
            pause_rx,
            drops,
            ecn_marked: hub.counter(&format!("switch.{name}.ecn_marked")),
            wd_disables: hub.counter(&format!("switch.{name}.watchdog.disables")),
            wd_reenables: hub.counter(&format!("switch.{name}.watchdog.reenables")),
            hub,
        }
    }
}

/// Slots in the per-switch flow-decision cache (power of two,
/// direct-mapped). 1024 × 24-byte entries ≈ 24 KiB per switch.
const FLOW_CACHE_SLOTS: usize = 1024;

/// One resolved ECMP decision: this exact five-tuple egresses on `port`.
#[derive(Clone, Copy)]
struct FlowCacheEntry {
    key: FiveTuple,
    port: PortId,
}

/// Flow-decision cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCacheStats {
    /// Lookups answered from the cache (FIB walk + ECMP hash skipped).
    pub hits: u64,
    /// Lookups that fell through to the full route lookup.
    pub misses: u64,
    /// Times the whole cache was flushed because the route table was
    /// opened for mutation.
    pub invalidations: u64,
}

/// Direct-mapped slot for a five-tuple: a cheap word mix, deliberately
/// *not* [`hash_five_tuple`] — the cache must be faster than the hash it
/// short-circuits, and correctness never depends on this function (hits
/// require full key equality).
#[inline]
fn flow_slot(t: &FiveTuple) -> usize {
    let x = (t.src_ip as u64)
        ^ ((t.dst_ip as u64) << 16)
        ^ ((t.src_port as u64) << 32)
        ^ ((t.dst_port as u64) << 43)
        ^ ((t.protocol as u64) << 59);
    (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as usize % FLOW_CACHE_SLOTS
}

/// The switch node.
pub struct Switch {
    cfg: SwitchConfig,
    /// This switch's router MAC (L3 interfaces).
    router_mac: MacAddr,
    /// ECMP hash salt (per-switch, like per-ASIC hash seeds).
    salt: u64,
    buffer: SharedBuffer,
    mac_table: MacTable,
    arp_table: ArpTable,
    routes: RouteTable,
    /// MAC of the L3 peer behind each fabric port (next-hop rewrite).
    peer_macs: Vec<Option<MacAddr>>,
    egress: Vec<EgressPort>,
    /// DCQCN congestion-point state per (port, priority).
    cp: Vec<[Option<CpState>; Priority::COUNT]>,
    wd: Vec<WatchdogPort>,
    /// Round-robin counter for per-packet spraying (§8.1 ablation).
    spray_counter: u64,
    /// DSCP→priority classification, precomputed from
    /// `cfg.dscp_to_priority` over the full 6-bit DSCP space so the
    /// per-packet path is one table index instead of an indirect call.
    dscp_lut: [Priority; 64],
    /// Direct-mapped five-tuple → egress-port cache for ECMP `Via`
    /// decisions; flushed whenever the route table is opened for
    /// mutation ([`Switch::routes_mut`]).
    flow_cache: Vec<Option<FlowCacheEntry>>,
    /// Flow-cache effectiveness counters.
    flow_stats: FlowCacheStats,
    /// Telemetry instruments (sentinels when the hub is disabled).
    tele: SwitchTele,
    /// Parked fault-script actions, addressed by admin timer tokens.
    admin: Vec<AdminAction>,
    /// Egress-occupancy bitmap, one bit per port: set whenever anything
    /// is enqueued (data or PFC control) on the port, cleared by the
    /// port-idle sweep once the port is drained *and* its DWRR state is
    /// reset — exactly the condition under which [`Switch::try_send_at`]
    /// is a pure no-op. The sweep skips clear-bit ports without touching
    /// their `EgressPort`, so a mostly-idle radix costs one bit test per
    /// port instead of a ctrl-queue probe plus a full DWRR rotation.
    /// Spurious set bits are harmless (the full scan runs); clear bits
    /// are debug-asserted against the quiescence predicate.
    egress_occ: Vec<u64>,
    /// Counters.
    pub stats: SwitchStats,
}

impl Switch {
    /// Build a switch from its configuration. `router_mac` must be unique
    /// per switch; `salt` seeds the ECMP hash.
    pub fn new(cfg: SwitchConfig, router_mac: MacAddr, salt: u64) -> Switch {
        let ports = cfg.ports as usize;
        let buffer = SharedBuffer::new(cfg.buffer, cfg.ports, &cfg.lossless);
        let cp = (0..ports)
            .map(|_| {
                let mut row: [Option<CpState>; Priority::COUNT] = Default::default();
                for (i, slot) in row.iter_mut().enumerate() {
                    *slot = cfg.ecn[i].map(CpState::new);
                }
                row
            })
            .collect();
        let tele = SwitchTele::register(cfg.telemetry.clone(), &cfg.name, ports);
        // DSCP is a 6-bit field; enumerate the map once.
        let dscp_lut = std::array::from_fn(|d| (cfg.dscp_to_priority)(d as u8));
        Switch {
            mac_table: MacTable::new(cfg.mac_timeout),
            arp_table: ArpTable::new(cfg.arp_timeout),
            routes: RouteTable::new(),
            peer_macs: vec![None; ports],
            egress: (0..ports).map(|_| EgressPort::new()).collect(),
            cp,
            wd: vec![WatchdogPort::default(); ports],
            spray_counter: 0,
            dscp_lut,
            flow_cache: vec![None; FLOW_CACHE_SLOTS],
            flow_stats: FlowCacheStats::default(),
            tele,
            admin: Vec::new(),
            egress_occ: vec![0; ports.div_ceil(64)],
            stats: SwitchStats::new(ports),
            buffer,
            router_mac,
            salt,
            cfg,
        }
    }

    /// Count a drop in both the legacy stats and the telemetry bus.
    fn note_drop(&mut self, reason: DropReason, now: SimTime) {
        self.stats.drop(reason);
        if self.tele.hub.is_enabled() {
            let i = DROP_REASONS
                .iter()
                .position(|r| *r == reason)
                .expect("known");
            self.tele.hub.incr(self.tele.drops[i]);
            let t = now.as_ps();
            self.tele.hub.trace(
                t,
                self.tele.scope,
                TraceEvent::Drop {
                    reason: reason.name(),
                },
            );
            if reason == DropReason::IncompleteArpLossless {
                self.tele
                    .hub
                    .trace(t, self.tele.scope, TraceEvent::ArpIncompleteDrop);
            }
        }
    }

    /// The switch's router MAC.
    pub fn router_mac(&self) -> MacAddr {
        self.router_mac
    }

    /// The configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Mutable route table (topology wiring). Opening the table for
    /// mutation flushes the flow-decision cache: cached egress ports were
    /// resolved against the table about to change, and a stale `Via`
    /// decision would silently diverge from the FIB.
    ///
    /// `invalidations` counts only *real* flushes — at least one live
    /// entry discarded. Opening an empty cache (build-time wiring, or
    /// repeated reroutes before any traffic) costs nothing and is not an
    /// invalidation event.
    pub fn routes_mut(&mut self) -> &mut RouteTable {
        let mut flushed = false;
        for e in self.flow_cache.iter_mut() {
            flushed |= e.take().is_some();
        }
        if flushed {
            self.flow_stats.invalidations += 1;
        }
        &mut self.routes
    }

    /// Flow-decision cache effectiveness counters.
    pub fn flow_cache_stats(&self) -> FlowCacheStats {
        self.flow_stats
    }

    /// Set the L3 peer MAC behind a fabric port (topology wiring).
    pub fn set_peer_mac(&mut self, port: PortId, mac: MacAddr) {
        self.peer_macs[port.index()] = Some(mac);
    }

    /// Seed an ARP entry (scenario setup / ARP protocol result).
    pub fn seed_arp(&mut self, ip: u32, mac: MacAddr, now: SimTime) {
        self.arp_table.insert(ip, mac, now);
    }

    /// Seed a MAC table entry.
    pub fn seed_mac(&mut self, mac: MacAddr, port: PortId, now: SimTime) {
        self.mac_table.learn(mac, port, now);
    }

    /// Evict a MAC entry — simulates the 5-minute timeout firing for a
    /// dead server while its 4-hour ARP entry survives (§4.2).
    pub fn evict_mac(&mut self, mac: MacAddr) {
        self.mac_table.evict(mac);
    }

    /// The shared buffer (read access for monitoring).
    pub fn buffer(&self) -> &SharedBuffer {
        &self.buffer
    }

    /// Total bytes queued at an egress port right now.
    pub fn egress_depth(&self, port: PortId) -> u64 {
        self.egress[port.index()].total_bytes()
    }

    /// Bytes queued at an egress port for one priority.
    pub fn egress_depth_prio(&self, port: PortId, prio: Priority) -> u64 {
        self.egress[port.index()].queue_bytes[prio.index()]
    }

    /// Deepest single egress port right now, total bytes across all
    /// classes — the instantaneous hot-spot depth the queue-depth
    /// heatmap samples.
    pub fn max_egress_depth(&self) -> u64 {
        self.egress
            .iter()
            .map(|e| e.total_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Bytes of lossless-class traffic queued across all egress ports —
    /// the backlog half of the deadlock signature (§4.2).
    pub fn lossless_backlog(&self) -> u64 {
        self.egress
            .iter()
            .map(|e| {
                (0..Priority::COUNT)
                    .filter(|i| self.cfg.lossless[*i])
                    .map(|i| e.queue_bytes[i])
                    .sum::<u64>()
            })
            .sum()
    }

    /// Total packets transmitted across all ports (including PFC control
    /// frames).
    pub fn total_tx_pkts(&self) -> u64 {
        self.stats.tx_pkts.iter().sum()
    }

    /// Data packets transmitted across all ports, excluding PFC control
    /// frames — the progress half of the deadlock signature (a wedged
    /// switch still emits pause refreshes, so raw tx keeps creeping).
    pub fn total_data_tx_pkts(&self) -> u64 {
        self.total_tx_pkts()
            - self.stats.pause_tx.iter().sum::<u64>()
            - self.stats.resume_tx.iter().sum::<u64>()
    }

    /// Total retained capacity (entries) across all egress data queues
    /// and control queues — the memory-bound hook for compaction tests.
    pub fn egress_queue_capacity(&self) -> usize {
        self.egress
            .iter()
            .map(|e| e.queues.iter().map(|q| q.capacity()).sum::<usize>() + e.ctrl.capacity())
            .sum()
    }

    /// Is `port`'s egress currently paused for `prio`?
    pub fn is_paused(&self, port: PortId, prio: Priority, now: SimTime) -> bool {
        self.egress[port.index()].paused_until[prio.index()] > now
    }

    /// Has the watchdog disabled lossless mode on `port`?
    pub fn lossless_disabled(&self, port: PortId) -> bool {
        self.wd[port.index()].lossless_disabled
    }

    fn classify(&self, pkt: &Packet) -> Priority {
        match self.cfg.classify {
            ClassifyMode::Vlan => pkt.pcp_priority().unwrap_or(self.cfg.untagged_priority),
            ClassifyMode::Dscp => pkt
                .ip
                .map(|ip| self.dscp_lut[(ip.dscp & 0x3f) as usize])
                .unwrap_or(self.cfg.untagged_priority),
        }
    }

    // ---- PFC handling ----

    fn on_pause_frame(&mut self, port: PortId, frame: &PauseFrame, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.wd[port.index()].last_pause_rx = now;
        if self.wd[port.index()].lossless_disabled {
            // Watchdog tripped: ignore pauses from this port entirely.
            return;
        }
        let rate = ctx.port_rate(port).unwrap_or(40_000_000_000);
        let mut any_pause = false;
        let mut resumed = false;
        for (prio, quanta) in frame.entries() {
            let e = &mut self.egress[port.index()];
            if quanta == 0 {
                e.paused_until[prio.index()] = now;
                resumed = true;
            } else {
                any_pause = true;
                let until = now + SimTime(PfcPauseFrame::quanta_to_ps(quanta, rate));
                e.paused_until[prio.index()] = until;
                self.tele.hub.trace(
                    now.as_ps(),
                    self.tele.scope,
                    TraceEvent::PauseRx {
                        port: port.0,
                        prio: prio.index() as u8,
                    },
                );
                // Wake the port when the pause expires.
                ctx.set_timer_at(until, tok_kick(port));
            }
        }
        if any_pause {
            self.stats.pause_rx[port.index()] += 1;
            self.tele.hub.incr(self.tele.pause_rx[port.index()]);
        }
        if resumed {
            self.try_send(port, ctx);
        }
    }

    /// After ingress-counter growth, send XOFF upstream if we crossed the
    /// threshold.
    fn maybe_xoff(&mut self, ingress: PortId, pg: Priority, ctx: &mut Ctx<'_>) {
        if !self.cfg.is_lossless(pg) {
            return;
        }
        if !self.buffer.over_xoff(ingress.0, pg) || *self.buffer.xoff_state(ingress.0, pg) {
            return;
        }
        *self.buffer.xoff_state(ingress.0, pg) = true;
        self.send_pause(ingress, pg, u16::MAX, ctx);
        self.stats.pause_tx[ingress.index()] += 1;
        self.tele.hub.incr(self.tele.pause_tx[ingress.index()]);
        self.tele.hub.trace(
            ctx.now().as_ps(),
            self.tele.scope,
            TraceEvent::PauseTx {
                port: ingress.0,
                prio: pg.index() as u8,
            },
        );
        // Refresh before the pause expires if we are still over XOFF.
        let rate = ctx.port_rate(ingress).unwrap_or(40_000_000_000);
        let refresh = SimTime(PfcPauseFrame::quanta_to_ps(u16::MAX, rate) / 2);
        ctx.set_timer(refresh, tok_refresh(ingress, pg));
    }

    /// After ingress-counter drain, send XON upstream if we fell below the
    /// resume threshold.
    fn maybe_xon(&mut self, ingress: PortId, pg: Priority, ctx: &mut Ctx<'_>) {
        if !*self.buffer.xoff_state(ingress.0, pg) {
            return;
        }
        if self.buffer.below_xon(ingress.0, pg) {
            *self.buffer.xoff_state(ingress.0, pg) = false;
            self.send_pause(ingress, pg, 0, ctx);
            self.stats.resume_tx[ingress.index()] += 1;
            self.tele.hub.incr(self.tele.resume_tx[ingress.index()]);
            self.tele.hub.trace(
                ctx.now().as_ps(),
                self.tele.scope,
                TraceEvent::ResumeTx {
                    port: ingress.0,
                    prio: pg.index() as u8,
                },
            );
        }
    }

    fn send_pause(&mut self, port: PortId, pg: Priority, quanta: u16, ctx: &mut Ctx<'_>) {
        let frame = if quanta == 0 {
            PauseFrame::resume(pg)
        } else {
            PauseFrame::pause(pg, quanta)
        };
        self.egress[port.index()].ctrl.push_back(CtrlFrame {
            id: ctx.next_packet_id(),
            frame,
            created_ps: ctx.now().as_ps(),
        });
        self.mark_egress_occupied(port);
        self.try_send(port, ctx);
    }

    // ---- forwarding pipeline ----

    fn handle_data(&mut self, ingress: PortId, mut pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // Hardware source-MAC learning.
        if !pkt.eth.src.is_multicast() {
            self.mac_table.learn(pkt.eth.src, ingress, now);
        }
        let prio = self.classify(&pkt);
        let lossless = self.cfg.is_lossless(prio) && !self.wd[ingress.index()].lossless_disabled;

        // Watchdog: lossless traffic from a quarantined port is discarded.
        if self.cfg.is_lossless(prio) && self.wd[ingress.index()].lossless_disabled {
            self.note_drop(DropReason::WatchdogLosslessOff, now);
            return;
        }

        // VLAN-based PFC: trunk-mode server ports cannot accept untagged
        // packets — the PXE-boot breakage of §3.
        if self.cfg.classify == ClassifyMode::Vlan
            && pkt.eth.vlan.is_none()
            && self.cfg.role(ingress.0) == PortRole::Server
        {
            self.note_drop(DropReason::UntaggedOnTrunk, now);
            return;
        }

        // §4.1 fault injection.
        if let (Some(filter), Some(ip)) = (self.cfg.drop_ip_id_low_byte, pkt.ip) {
            if (ip.id & 0xff) as u8 == filter {
                self.note_drop(DropReason::InjectedFilter, now);
                return;
            }
        }

        // Forwarding decision.
        if pkt.eth.dst == self.router_mac {
            // L3 path.
            let Some(ip) = pkt.ip.as_mut() else {
                return; // non-IP addressed to the router: nothing to do
            };
            if ip.ttl <= 1 {
                self.note_drop(DropReason::TtlExpired, now);
                return;
            }
            ip.ttl -= 1;
            let dst_ip = ip.dst;
            enum Decision {
                Via(PortId),
                Connected,
            }
            // Flow-decision cache: a five-tuple previously resolved to an
            // ECMP `Via` port short-circuits the FIB walk and the ECMP
            // hash. A hit requires full key equality, and the cache only
            // ever holds tuple-selected `Via` decisions, so for any fixed
            // route table the answer is bit-identical to the slow path;
            // `routes_mut` flushes it before the table can change.
            // Spraying bypasses it (the decision is stateful per packet).
            let cached = if self.cfg.per_packet_spraying {
                None
            } else {
                pkt.five_tuple().and_then(|t| {
                    let hit = self.flow_cache[flow_slot(&t)]
                        .filter(|e| e.key == t)
                        .map(|e| e.port);
                    if hit.is_some() {
                        self.flow_stats.hits += 1;
                    } else {
                        self.flow_stats.misses += 1;
                    }
                    hit
                })
            };
            let decision = if let Some(port) = cached {
                Decision::Via(port)
            } else {
                match self.routes.lookup(dst_ip) {
                    None => {
                        self.note_drop(DropReason::NoRoute, now);
                        return;
                    }
                    Some(NextHop::Via(group)) => {
                        let port = if self.cfg.per_packet_spraying {
                            self.spray_counter += 1;
                            group.ports()[(self.spray_counter as usize) % group.ports().len()]
                        } else {
                            match pkt.five_tuple() {
                                Some(t) => {
                                    let port = group.select(&t, self.salt);
                                    self.flow_cache[flow_slot(&t)] =
                                        Some(FlowCacheEntry { key: t, port });
                                    port
                                }
                                None => group.ports()[(dst_ip as usize) % group.ports().len()],
                            }
                        };
                        Decision::Via(port)
                    }
                    Some(NextHop::Connected) => Decision::Connected,
                }
            };
            match decision {
                Decision::Via(port) => {
                    pkt.eth.src = self.router_mac;
                    if let Some(mac) = self.peer_macs[port.index()] {
                        pkt.eth.dst = mac;
                    }
                    self.admit_and_enqueue(ingress, port, pkt, prio, lossless, false, ctx);
                }
                Decision::Connected => {
                    let Some(mac) = self.arp_table.lookup(dst_ip, now) else {
                        self.note_drop(DropReason::ArpMiss, now);
                        return;
                    };
                    pkt.eth.src = self.router_mac;
                    pkt.eth.dst = mac;
                    match self.mac_table.lookup(mac, now) {
                        Some(port) => {
                            self.admit_and_enqueue(ingress, port, pkt, prio, lossless, false, ctx);
                        }
                        None => {
                            // Incomplete ARP entry: IP→MAC known, MAC→port
                            // unknown. The standard behaviour is to flood —
                            // the §4.2 deadlock ingredient. The fix drops
                            // lossless packets instead.
                            if self.cfg.drop_lossless_on_incomplete_arp && lossless {
                                self.note_drop(DropReason::IncompleteArpLossless, now);
                                return;
                            }
                            self.flood(ingress, pkt, prio, lossless, ctx);
                        }
                    }
                }
            }
        } else if pkt.eth.dst.is_multicast() {
            self.flood(ingress, pkt, prio, lossless, ctx);
        } else {
            // L2 bridging path.
            match self.mac_table.lookup(pkt.eth.dst, now) {
                Some(port) if port == ingress => { /* already there; drop quietly */ }
                Some(port) => {
                    self.admit_and_enqueue(ingress, port, pkt, prio, lossless, false, ctx);
                }
                None => {
                    if self.cfg.drop_lossless_on_incomplete_arp && lossless {
                        self.note_drop(DropReason::IncompleteArpLossless, now);
                        return;
                    }
                    self.flood(ingress, pkt, prio, lossless, ctx);
                }
            }
        }
    }

    /// Flood to every connected port except the ingress. Each copy is
    /// admitted (and accounted) separately; copies landing on fabric ports
    /// will be discarded at the head of the egress queue.
    fn flood(
        &mut self,
        ingress: PortId,
        pkt: Packet,
        prio: Priority,
        lossless: bool,
        ctx: &mut Ctx<'_>,
    ) {
        for p in 0..self.cfg.ports {
            let port = PortId(p);
            if port == ingress || !ctx.port_connected(port) {
                continue;
            }
            self.admit_and_enqueue(ingress, port, pkt, prio, lossless, true, ctx);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn admit_and_enqueue(
        &mut self,
        ingress: PortId,
        egress: PortId,
        mut pkt: Packet,
        prio: Priority,
        lossless: bool,
        flood_copy: bool,
        ctx: &mut Ctx<'_>,
    ) {
        // Watchdog: lossless traffic to a quarantined port is discarded.
        if self.cfg.is_lossless(prio) && self.wd[egress.index()].lossless_disabled {
            self.note_drop(DropReason::WatchdogLosslessOff, ctx.now());
            return;
        }
        let bytes = pkt.wire_size() as u64;
        let outcome = self.buffer.admit(ingress.0, prio, bytes, lossless);
        if outcome == AdmitOutcome::Drop {
            let reason = if lossless {
                DropReason::LosslessOverflow
            } else {
                DropReason::LossyOverflow
            };
            self.note_drop(reason, ctx.now());
            return;
        }
        // DCQCN congestion point: mark on egress queue depth at enqueue.
        if pkt.ip.map(|ip| ip.ecn) == Some(EcnCodepoint::Ect) {
            let depth = self.egress[egress.index()].queue_bytes[prio.index()];
            if let Some(cp) = &mut self.cp[egress.index()][prio.index()] {
                let draw: f64 = ctx.rng().gen_f64();
                if cp.should_mark(depth, draw) {
                    if let Some(ip) = pkt.ip.as_mut() {
                        ip.ecn = EcnCodepoint::Ce;
                    }
                    self.stats.ecn_marked += 1;
                    self.tele.hub.incr(self.tele.ecn_marked);
                }
            }
        }
        // Hop streaming: capture flow identity before the packet moves
        // into the queue. Guarded so a detached sink keeps the
        // per-packet path at one relaxed load.
        let hop_flow = if self.tele.hub.streams_hops() {
            Some(pkt.ip.map_or((0, 0), |ip| (ip.src, ip.dst)))
        } else {
            None
        };
        let e = &mut self.egress[egress.index()];
        e.queue_bytes[prio.index()] += bytes;
        e.total += bytes;
        e.queues[prio.index()].push_back(QueuedPkt {
            pkt,
            acct: Some((ingress, prio, outcome)),
            flood_copy,
        });
        let total = e.total_bytes();
        self.mark_egress_occupied(egress);
        if let Some((src_ip, dst_ip)) = hop_flow {
            self.tele.hub.stream_hop(
                ctx.now().as_ps(),
                self.tele.scope,
                HopRecord {
                    port: egress.0,
                    prio: prio.index() as u8,
                    bytes: bytes as u32,
                    src_ip,
                    dst_ip,
                    queue_bytes: total,
                },
            );
        }
        let peak = &mut self.stats.peak_egress_bytes[egress.index()];
        *peak = (*peak).max(total);
        // Ingress-counter growth may cross XOFF.
        self.maybe_xoff(ingress, prio, ctx);
        self.try_send(egress, ctx);
    }

    // ---- egress scheduling ----

    /// DWRR pick: returns the priority whose head packet should transmit.
    ///
    /// Classic deficit round robin: a queue's deficit is replenished once
    /// per rotation *arrival*, it is served while the deficit covers the
    /// head packet, and then the pointer moves on — so a saturated
    /// lossless queue cannot starve the TCP class (the §2 bandwidth
    /// isolation Figure 8 depends on).
    fn pick_queue(&mut self, port: PortId, now: SimTime) -> Option<usize> {
        let weights = self.cfg.weights;
        let e = &mut self.egress[port.index()];
        let available = |e: &EgressPort, i: usize| -> Option<u64> {
            if e.queues[i].is_empty() || e.paused_until[i] > now {
                None
            } else {
                Some(e.queues[i][0].pkt.wire_size() as u64)
            }
        };
        // Continue the burst on the queue being served, if its deficit
        // still covers the head.
        if let Some(i) = e.serving {
            match available(e, i) {
                Some(head) if e.deficit[i] >= head => {
                    e.deficit[i] -= head;
                    return Some(i);
                }
                _ => {
                    if e.queues[i].is_empty() {
                        e.deficit[i] = 0;
                    }
                    e.serving = None;
                    e.rr = (i + 1) % Priority::COUNT;
                }
            }
        }
        // One full rotation: replenish on arrival, serve if covered.
        for _ in 0..Priority::COUNT {
            let i = e.rr;
            match available(e, i) {
                Some(head) => {
                    e.deficit[i] += DWRR_QUANTUM * weights[i].max(1) as u64;
                    if e.deficit[i] >= head {
                        e.deficit[i] -= head;
                        e.serving = Some(i);
                        return Some(i);
                    }
                    // Deficit carries to the next rotation.
                }
                None => {
                    if e.queues[i].is_empty() {
                        e.deficit[i] = 0;
                    }
                }
            }
            e.rr = (e.rr + 1) % Priority::COUNT;
        }
        None
    }

    /// Flag `port` in the egress-occupancy bitmap (something was
    /// enqueued; the idle sweep must service it).
    #[inline]
    fn mark_egress_occupied(&mut self, port: PortId) {
        let p = port.index();
        self.egress_occ[p / 64] |= 1u64 << (p % 64);
    }

    /// Bitmap probe: false means the port is provably quiescent and the
    /// idle sweep may skip it outright.
    #[inline]
    fn egress_maybe_active(&self, p: usize) -> bool {
        self.egress_occ[p / 64] & (1u64 << (p % 64)) != 0
    }

    /// True iff `port`'s egress is fully drained *and* its DWRR
    /// scheduler state is reset — under which [`Switch::try_send_at`]
    /// is a pure no-op (empty ctrl probe, a deficit rotation that
    /// writes zeros over zeros and wraps `rr` back to itself). This —
    /// not mere emptiness — is the occupancy bit's clear condition:
    /// a just-drained port keeps its bit until one full `try_send_at`
    /// has retired the residual `serving`/`deficit` state, so skipping
    /// clear-bit ports is digest-neutral by construction.
    fn egress_quiescent(&self, p: usize) -> bool {
        let e = &self.egress[p];
        e.ctrl.is_empty()
            && e.total == 0
            && e.serving.is_none()
            && e.deficit.iter().all(|&d| d == 0)
    }

    /// Try to start a transmission on `port`.
    fn try_send(&mut self, port: PortId, ctx: &mut Ctx<'_>) {
        self.try_send_at(port, ctx.now(), ctx);
    }

    /// [`Switch::try_send`] with the clock already read — the sweep entry
    /// points ([`Node::on_port_idle_batch`]) hoist `now` out of their
    /// per-port loop; `now` must equal `ctx.now()`.
    fn try_send_at(&mut self, port: PortId, now: SimTime, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(now, ctx.now());
        // `in_flight` still set means the previous packet's PortIdle event
        // has not fired yet (it may share this event's timestamp): the
        // port is logically busy, and starting another transmission here
        // would overwrite `in_flight` and leak its buffer accounting.
        if ctx.port_busy(port)
            || !ctx.port_connected(port)
            || self.egress[port.index()].in_flight.is_some()
        {
            return;
        }
        // Control frames (PFC) first; they are never paused.
        if let Some(cf) = self.egress[port.index()].ctrl.pop_front() {
            let pkt = Packet::new(
                cf.id,
                rocescale_packet::EthMeta {
                    src: self.router_mac,
                    dst: MacAddr::PAUSE_MULTICAST,
                    vlan: None,
                },
                None,
                PacketKind::Pfc(cf.frame),
                cf.created_ps,
            );
            self.stats.tx_pkts[port.index()] += 1;
            self.stats.tx_bytes[port.index()] += pkt.wire_size() as u64;
            let _ = ctx.transmit(port, pkt);
            return;
        }
        loop {
            let Some(prio) = self.pick_queue(port, now) else {
                return;
            };
            let e = &mut self.egress[port.index()];
            let qp = e.queues[prio].pop_front().expect("picked nonempty queue");
            let bytes = qp.pkt.wire_size() as u64;
            e.queue_bytes[prio] -= bytes;
            e.total -= bytes;
            // Flood copies die at the head of fabric-port queues: the
            // destination MAC matches no next hop (Figure 4).
            if qp.flood_copy && self.cfg.role(port.0) == PortRole::Fabric {
                self.release(&qp, ctx);
                self.note_drop(DropReason::FloodCopyAtFabricHead, now);
                continue; // same transmission opportunity: try the next packet
            }
            self.stats.tx_pkts[port.index()] += 1;
            self.stats.tx_bytes[port.index()] += bytes;
            self.stats.tx_bytes_per_prio[prio] += bytes;
            let pkt = qp.pkt;
            self.egress[port.index()].in_flight = Some(qp);
            match ctx.transmit(port, pkt) {
                Ok(()) => {}
                Err(TxError::Busy | TxError::Unconnected) => {
                    unreachable!("checked idle and connected")
                }
            }
            return;
        }
    }

    /// Release buffer accounting for a packet that left (or was dropped at
    /// the head of) an egress queue, and maybe XON its ingress.
    fn release(&mut self, qp: &QueuedPkt, ctx: &mut Ctx<'_>) {
        if let Some((ingress, pg, outcome)) = qp.acct {
            self.buffer
                .release(ingress.0, pg, qp.pkt.wire_size() as u64, outcome);
            self.maybe_xon(ingress, pg, ctx);
        }
    }

    // ---- watchdog ----

    fn watchdog_scan(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let wd_cfg = self.cfg.watchdog;
        for p in 0..self.cfg.ports as usize {
            if self.cfg.role(p as u16) != PortRole::Server {
                continue;
            }
            let receiving_pauses = now.saturating_sub(self.wd[p].last_pause_rx)
                < wd_cfg.poll_every + wd_cfg.poll_every;
            if self.wd[p].lossless_disabled {
                // Re-enable once the storm has been quiet long enough.
                if now.saturating_sub(self.wd[p].last_pause_rx) >= wd_cfg.reenable_after {
                    self.wd[p].lossless_disabled = false;
                    self.wd[p].undrainable_since = None;
                    self.stats.watchdog_reenables += 1;
                    self.tele.hub.incr(self.tele.wd_reenables);
                    self.tele.hub.trace(
                        now.as_ps(),
                        self.tele.scope,
                        TraceEvent::WatchdogReenabled { port: p as u16 },
                    );
                }
                continue;
            }
            let backlog = self.egress[p].has_lossless_backlog(&self.cfg.lossless);
            if backlog && receiving_pauses {
                let since = *self.wd[p].undrainable_since.get_or_insert(now);
                if now.saturating_sub(since) >= wd_cfg.disable_after {
                    self.trip_watchdog(PortId(p as u16), ctx);
                }
            } else {
                self.wd[p].undrainable_since = None;
            }
        }
        ctx.set_timer(wd_cfg.poll_every, TOK_WATCHDOG << TOK_KIND_SHIFT);
    }

    /// Disable lossless mode on a port: flush its queued lossless packets
    /// (releasing their buffer — this is what un-sticks the fabric) and
    /// clear its pause state.
    fn trip_watchdog(&mut self, port: PortId, ctx: &mut Ctx<'_>) {
        self.wd[port.index()].lossless_disabled = true;
        self.stats.watchdog_disables += 1;
        self.tele.hub.incr(self.tele.wd_disables);
        self.tele.hub.trace(
            ctx.now().as_ps(),
            self.tele.scope,
            TraceEvent::WatchdogDisabled { port: port.0 },
        );
        let lossless = self.cfg.lossless;
        let mut flushed: Vec<QueuedPkt> = Vec::new();
        {
            let e = &mut self.egress[port.index()];
            for (i, is_ll) in lossless.iter().enumerate() {
                if !is_ll {
                    continue;
                }
                e.paused_until[i] = SimTime::ZERO;
                while let Some(qp) = e.queues[i].pop_front() {
                    let bytes = qp.pkt.wire_size() as u64;
                    e.queue_bytes[i] -= bytes;
                    e.total -= bytes;
                    flushed.push(qp);
                }
            }
        }
        for qp in &flushed {
            self.release(qp, ctx);
            self.note_drop(DropReason::WatchdogLosslessOff, ctx.now());
        }
        self.try_send(port, ctx);
    }

    // ---- runtime administration (fault scripts) ----

    /// Park an [`AdminAction`] and return the timer token that executes
    /// it. Schedule the token (via `World::schedule_timer` or
    /// `Ctx::set_timer_at`) at the incident time; an unscheduled or
    /// never-fired token adds zero events, so an empty script is
    /// digest-invisible.
    pub fn schedule_admin(&mut self, action: AdminAction) -> u64 {
        let idx = self.admin.len() as u64;
        assert!(idx < (1 << 48), "admin action index overflow");
        self.admin.push(action);
        (TOK_ADMIN << TOK_KIND_SHIFT) | idx
    }

    /// Turn lossless mode for `prio` on or off at runtime. Turning it
    /// *off* flushes every egress queue of that priority exactly once —
    /// packets are released from the shared buffer (un-sticking any
    /// upstream pause) and accounted as [`DropReason::AdminLosslessOff`]
    /// drops — and clears the priority's pause state on every port.
    /// Turning it back on only restores the flag; queues refill from
    /// live traffic. A no-change call is a no-op.
    pub fn set_lossless(&mut self, prio: Priority, on: bool, ctx: &mut Ctx<'_>) {
        if self.cfg.lossless[prio.index()] == on {
            return;
        }
        self.cfg.lossless[prio.index()] = on;
        if on {
            return;
        }
        let mut flushed: Vec<QueuedPkt> = Vec::new();
        for p in 0..self.cfg.ports as usize {
            let e = &mut self.egress[p];
            e.paused_until[prio.index()] = SimTime::ZERO;
            while let Some(qp) = e.queues[prio.index()].pop_front() {
                let bytes = qp.pkt.wire_size() as u64;
                e.queue_bytes[prio.index()] -= bytes;
                e.total -= bytes;
                flushed.push(qp);
            }
        }
        for qp in &flushed {
            self.release(qp, ctx);
            self.note_drop(DropReason::AdminLosslessOff, ctx.now());
        }
        for p in 0..self.cfg.ports {
            self.try_send(PortId(p), ctx);
        }
    }

    /// Execute a parked admin action (the `TOK_ADMIN` timer handler).
    fn apply_admin(&mut self, idx: usize, ctx: &mut Ctx<'_>) {
        let Some(action) = self.admin.get(idx).cloned() else {
            return;
        };
        match action {
            AdminAction::LinkSet { port, up } => {
                ctx.set_link_up(port, up);
                if up {
                    self.try_send(port, ctx);
                    ctx.wake_peer(port);
                }
            }
            AdminAction::SetLossless { prio, on } => {
                self.set_lossless(Priority::new(prio), on, ctx);
            }
            AdminAction::SetThresholds { alpha, xoff_static } => {
                self.buffer.set_thresholds(alpha, xoff_static);
                // A tighter threshold can put counters over XOFF right
                // now — surface the pauses immediately, as the ASIC's
                // comparator would.
                for p in 0..self.cfg.ports {
                    for i in 0..Priority::COUNT {
                        if self.cfg.lossless[i] {
                            self.maybe_xoff(PortId(p), Priority::new(i as u8), ctx);
                        }
                    }
                }
            }
            AdminAction::Reroute { prefix, len, ports } => {
                self.routes_mut()
                    .replace(prefix, len, crate::routing::EcmpGroup::new(ports));
            }
            AdminAction::EvictMac { mac } => self.evict_mac(mac),
            AdminAction::SeedMac { mac, port } => self.seed_mac(mac, port, ctx.now()),
        }
    }
}

impl Node for Switch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.watchdog.enabled {
            ctx.set_timer(self.cfg.watchdog.poll_every, TOK_WATCHDOG << TOK_KIND_SHIFT);
        }
    }

    fn on_packet(&mut self, port: PortId, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.stats.rx_pkts[port.index()] += 1;
        if let PacketKind::Pfc(frame) = pkt.kind {
            self.on_pause_frame(port, &frame, ctx);
            return;
        }
        self.handle_data(port, pkt, ctx);
    }

    fn on_packet_batch(&mut self, arrivals: &mut Vec<(PortId, Packet)>, ctx: &mut Ctx<'_>) {
        // Same-tick arrival sweep: one virtual dispatch for the whole
        // run, per-packet handler order preserved exactly (the rx
        // counter, PFC/data split, admission, and ECN draws all happen
        // in the same order the single-step path would produce).
        for (port, pkt) in arrivals.drain(..) {
            self.stats.rx_pkts[port.index()] += 1;
            if let PacketKind::Pfc(frame) = pkt.kind {
                self.on_pause_frame(port, &frame, ctx);
            } else {
                self.handle_data(port, pkt, ctx);
            }
        }
    }

    fn on_port_idle(&mut self, port: PortId, ctx: &mut Ctx<'_>) {
        // The packet that was serializing has fully left: release its
        // buffer accounting, then start the next one.
        if let Some(qp) = self.egress[port.index()].in_flight.take() {
            self.release(&qp, ctx);
        }
        self.try_send(port, ctx);
    }

    fn on_port_idle_batch(&mut self, ports: &[PortId], ctx: &mut Ctx<'_>) {
        // Same-tick transmit sweep: all of this switch's ports that went
        // idle on this tick are serviced in one pass, with the clock read
        // once. Port order matches event order, so DWRR rotation, buffer
        // releases, and XON generation are identical to single-step.
        let now = ctx.now();
        for &port in ports {
            if let Some(qp) = self.egress[port.index()].in_flight.take() {
                self.release(&qp, ctx);
            }
            let p = port.index();
            if !self.egress_maybe_active(p) {
                // Clear bit ⟹ drained and DWRR-reset: `try_send_at`
                // would be a pure no-op, so the sweep skips the port
                // without touching its `EgressPort` at all.
                debug_assert!(
                    self.egress_quiescent(p),
                    "occupancy bit clear on an active egress port {p}"
                );
                continue;
            }
            self.try_send_at(port, now, ctx);
            if self.egress_quiescent(p) {
                self.egress_occ[p / 64] &= !(1u64 << (p % 64));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match token >> TOK_KIND_SHIFT {
            TOK_KICK => {
                let port = PortId((token & 0xffff) as u16);
                self.try_send(port, ctx);
            }
            TOK_PAUSE_REFRESH => {
                let port = PortId((token & 0xffff) as u16);
                let pg = Priority::new(((token >> 16) & 0x7) as u8);
                if *self.buffer.xoff_state(port.0, pg) {
                    // Still over XOFF: refresh the pause.
                    self.send_pause(port, pg, u16::MAX, ctx);
                    self.stats.pause_tx[port.index()] += 1;
                    self.tele.hub.incr(self.tele.pause_tx[port.index()]);
                    self.tele.hub.trace(
                        ctx.now().as_ps(),
                        self.tele.scope,
                        TraceEvent::PauseTx {
                            port: port.0,
                            prio: pg.index() as u8,
                        },
                    );
                    let rate = ctx.port_rate(port).unwrap_or(40_000_000_000);
                    let refresh = SimTime(PfcPauseFrame::quanta_to_ps(u16::MAX, rate) / 2);
                    ctx.set_timer(refresh, tok_refresh(port, pg));
                }
            }
            TOK_WATCHDOG => self.watchdog_scan(ctx),
            TOK_ADMIN => self.apply_admin((token & ((1 << TOK_KIND_SHIFT) - 1)) as usize, ctx),
            _ => {}
        }
    }

    fn compact(&mut self) {
        for e in &mut self.egress {
            for q in &mut e.queues {
                q.shrink_to_fit();
            }
            e.ctrl.shrink_to_fit();
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
