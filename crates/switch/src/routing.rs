//! L3 forwarding: longest-prefix match and five-tuple ECMP (§2).
//!
//! "The UDP header is needed for ECMP-based multi-path routing. … The
//! intermediate switches use standard five-tuple hashing. Thus, traffic
//! belonging to the same QP follows the same path, while traffic on
//! different QPs … can follow different paths." The 60% utilization
//! ceiling of Figure 7 is ECMP hash collision, which this deterministic
//! hash reproduces.

use rocescale_packet::FiveTuple;
use rocescale_sim::PortId;

/// A set of equal-cost egress ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcmpGroup {
    ports: Vec<PortId>,
}

impl EcmpGroup {
    /// Build from the member ports (must be non-empty).
    pub fn new(ports: Vec<PortId>) -> EcmpGroup {
        assert!(!ports.is_empty(), "empty ECMP group");
        EcmpGroup { ports }
    }

    /// A single next hop.
    pub fn single(port: PortId) -> EcmpGroup {
        EcmpGroup { ports: vec![port] }
    }

    /// Member ports.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// Pick the member for a flow: standard five-tuple hash, salted per
    /// switch so different hops hash independently (as distinct ASICs'
    /// seeds do in practice).
    pub fn select(&self, tuple: &FiveTuple, salt: u64) -> PortId {
        let h = hash_five_tuple(tuple, salt);
        self.ports[(h % self.ports.len() as u64) as usize]
    }
}

/// Deterministic 64-bit mix of the five-tuple (SplitMix64 finalizer — no
/// external dependency, stable across runs).
pub fn hash_five_tuple(t: &FiveTuple, salt: u64) -> u64 {
    let mut x = salt ^ 0x9e37_79b9_7f4a_7c15;
    for word in [
        t.src_ip as u64,
        t.dst_ip as u64,
        ((t.protocol as u64) << 32) | ((t.src_port as u64) << 16) | t.dst_port as u64,
    ] {
        x = x.wrapping_add(word).wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

#[derive(Debug, Clone)]
struct Route {
    prefix: u32,
    len: u8,
    group: EcmpGroup,
    /// Directly connected subnet: deliver via ARP + MAC table instead of
    /// forwarding to a next-hop port.
    connected: bool,
}

/// A longest-prefix-match table.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

/// Result of a route lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextHop<'a> {
    /// Forward out one of these ports (ECMP).
    Via(&'a EcmpGroup),
    /// The destination is on a directly connected subnet: resolve with
    /// ARP/MAC tables (ToR behaviour).
    Connected,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Add a forwarding route for `prefix/len` via `group`.
    pub fn add(&mut self, prefix: u32, len: u8, group: EcmpGroup) {
        self.routes.push(Route {
            prefix: prefix & Self::mask(len),
            len,
            group,
            connected: false,
        });
        self.routes.sort_by_key(|r| std::cmp::Reverse(r.len));
    }

    /// Replace the forwarding route for `prefix/len` with `group`,
    /// removing any previous forwarding entry for the same prefix —
    /// the mid-run reroute primitive ([`add`](Self::add) only appends,
    /// so a reroute through it would leave the old, longer-lived entry
    /// winning ties). Connected routes are untouched.
    pub fn replace(&mut self, prefix: u32, len: u8, group: EcmpGroup) {
        let prefix = prefix & Self::mask(len);
        self.routes
            .retain(|r| r.connected || r.len != len || r.prefix != prefix);
        self.add(prefix, len, group);
    }

    /// Mark `prefix/len` as directly connected (L2 resolution applies).
    pub fn add_connected(&mut self, prefix: u32, len: u8) {
        self.routes.push(Route {
            prefix: prefix & Self::mask(len),
            len,
            group: EcmpGroup::single(PortId(0)), // unused
            connected: true,
        });
        self.routes.sort_by_key(|r| std::cmp::Reverse(r.len));
    }

    /// Longest-prefix match for `dst`.
    pub fn lookup(&self, dst: u32) -> Option<NextHop<'_>> {
        self.routes
            .iter()
            .find(|r| dst & Self::mask(r.len) == r.prefix)
            .map(|r| {
                if r.connected {
                    NextHop::Connected
                } else {
                    NextHop::Via(&r.group)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a000001,
            dst_ip: 0x0a010001,
            protocol: 17,
            src_port,
            dst_port: 4791,
        }
    }

    #[test]
    fn lpm_prefers_longer_prefix() {
        let mut t = RouteTable::new();
        t.add(0x0a000000, 8, EcmpGroup::single(PortId(1)));
        t.add(0x0a010000, 16, EcmpGroup::single(PortId(2)));
        t.add_connected(0x0a010200, 24);
        match t.lookup(0x0a000005).unwrap() {
            NextHop::Via(g) => assert_eq!(g.ports(), &[PortId(1)]),
            other => panic!("{other:?}"),
        }
        match t.lookup(0x0a010005).unwrap() {
            NextHop::Via(g) => assert_eq!(g.ports(), &[PortId(2)]),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.lookup(0x0a010203).unwrap(), NextHop::Connected);
        assert!(t.lookup(0x0b000001).is_none());
    }

    /// Same QP (same tuple) always hashes to the same member — the
    /// in-order-delivery property RoCEv2 relies on.
    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let g = EcmpGroup::new((0..4).map(PortId).collect());
        let a = g.select(&tuple(5000), 42);
        for _ in 0..10 {
            assert_eq!(g.select(&tuple(5000), 42), a);
        }
    }

    /// Different QPs (different UDP source ports) spread across members —
    /// and collide at roughly the birthday rate, which is what caps
    /// Figure 7 at ~60%.
    #[test]
    fn ecmp_spreads_flows() {
        let g = EcmpGroup::new((0..8).map(PortId).collect());
        let mut counts = [0u32; 8];
        for sp in 0..8000u16 {
            counts[g.select(&tuple(sp), 42).index()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    /// Different salts (switches) give independent selections.
    #[test]
    fn salt_changes_mapping() {
        let g = EcmpGroup::new((0..16).map(PortId).collect());
        let differs = (0..100u16)
            .filter(|sp| g.select(&tuple(*sp), 1) != g.select(&tuple(*sp), 2))
            .count();
        assert!(differs > 50, "only {differs}/100 differ");
    }

    #[test]
    #[should_panic(expected = "empty ECMP group")]
    fn empty_group_rejected() {
        EcmpGroup::new(vec![]);
    }
}
