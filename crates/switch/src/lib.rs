//! Shared-buffer Ethernet switch model with PFC, the heart of the paper's
//! substrate.
//!
//! The model reproduces the behaviours the paper's mechanisms live and die
//! by:
//!
//! * **Ingress priority-group accounting** ([`buffer`]): in the paper's
//!   shared-buffer ASICs "an ingress queue is implemented simply as a
//!   counter — all packets share a common buffer pool" (§2). A packet
//!   counts against its (ingress port, priority group) pair from admission
//!   until it finishes leaving the egress port. XOFF pause frames fire when
//!   the counter crosses a threshold — either a static one or the dynamic
//!   `α × (unallocated shared buffer)` rule whose misconfiguration caused
//!   the §6.2 incident — and XON resumes below a lower threshold.
//!   Per-(port, PG) **headroom** absorbs the in-flight packets of the
//!   pause-propagation "gray period"; a correctly configured lossless
//!   class never drops, which experiments assert.
//! * **Classification** ([`config`]): VLAN-based (PCP bits) or DSCP-based
//!   (§3) priority → priority-group mapping, with trunk-vs-access port
//!   semantics so the PXE-boot failure of VLAN-based PFC is reproducible.
//! * **Forwarding** ([`tables`], [`routing`]): L3 longest-prefix match
//!   with five-tuple ECMP, plus the L2 tail at the ToR — ARP table
//!   (≈4 h timeout) and MAC table (≈5 min timeout) with the *flooding*
//!   behaviour on incomplete entries that creates the §4.2 deadlock, and
//!   the paper's fix (drop lossless packets on incomplete ARP).
//! * **Egress scheduling** ([`switch`]): eight per-priority queues with
//!   deficit-weighted round-robin, per-priority PFC pause state, a
//!   control path for pause frames that bypasses data queues, and
//!   DCQCN-CP ECN marking on egress queue depth.
//! * **Safety** ([`switch`]): the switch-side PFC storm watchdog (§4.3)
//!   that disables lossless mode on a server-facing port receiving
//!   continuous pauses while its queue cannot drain, and re-enables it
//!   after the pauses disappear.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod routing;
pub mod switch;
pub mod tables;

pub use buffer::{AdmitOutcome, SharedBuffer};
pub use config::{BufferConfig, ClassifyMode, PortRole, SwitchConfig, WatchdogConfig};
pub use routing::{EcmpGroup, RouteTable};
pub use switch::{AdminAction, DropReason, FlowCacheStats, Switch, SwitchStats};
pub use tables::{ArpTable, MacTable};
