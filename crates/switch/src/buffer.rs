//! Shared-buffer ingress accounting: the counters PFC lives on.
//!
//! Mirrors the paper's description of commodity shared-buffer ASICs (§2):
//! all packets share one pool; an "ingress queue" is just a byte counter
//! per (ingress port, priority group). Lossless PGs additionally own a
//! reserved *headroom* that absorbs in-flight bytes after XOFF is sent.
//! The dynamic-sharing rule (§6.2) gates shared-pool admission at
//! `α × unallocated`, the parameter whose silent change from 1/16 to 1/64
//! caused the production incident of Figure 10.

use rocescale_packet::Priority;

use crate::config::BufferConfig;

/// Where an admitted packet's bytes were accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Counted against the shared pool.
    Shared,
    /// Counted against the (port, PG) headroom (lossless only, after the
    /// XOFF threshold is exceeded).
    Headroom,
    /// Rejected: lossy packet over threshold, or pool exhausted, or —
    /// configuration failure — lossless headroom overrun.
    Drop,
}

#[derive(Debug, Clone, Copy, Default)]
struct PgCounter {
    shared: u64,
    headroom: u64,
    /// Currently in XOFF state (pause sent, XON pending).
    xoff: bool,
}

/// The shared buffer of one switch.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    cfg: BufferConfig,
    /// Shared-pool bytes in use across all (port, PG).
    shared_used: u64,
    /// Shared-pool capacity: total minus all headroom reservations.
    shared_capacity: u64,
    /// Per-(port, PG) counters.
    counters: Vec<[PgCounter; Priority::COUNT]>,
    /// Peak shared usage, for monitoring.
    peak_shared: u64,
    /// Memoized [`SharedBuffer::xoff_threshold`]: the float multiply only
    /// depends on `shared_used` and the configured α, so it is recomputed
    /// at those (rare) mutation points instead of on every admission,
    /// XOFF, and XON comparison. Bit-exact with the direct computation.
    cached_threshold: u64,
}

impl SharedBuffer {
    /// Build for `ports` ports; headroom is reserved for each
    /// (port, lossless PG) pair up front, exactly like static headroom
    /// carving on real ASICs.
    pub fn new(cfg: BufferConfig, ports: u16, lossless: &[bool; Priority::COUNT]) -> SharedBuffer {
        let lossless_pgs = lossless.iter().filter(|l| **l).count() as u64;
        let reserved = cfg.headroom_per_port_pg * lossless_pgs * ports as u64;
        assert!(
            reserved < cfg.total_bytes,
            "headroom ({reserved} B) exceeds buffer ({} B): too many lossless classes for \
             this buffer — the §2 constraint",
            cfg.total_bytes
        );
        let mut b = SharedBuffer {
            shared_capacity: cfg.total_bytes - reserved,
            cfg,
            shared_used: 0,
            counters: vec![[PgCounter::default(); Priority::COUNT]; ports as usize],
            peak_shared: 0,
            cached_threshold: 0,
        };
        b.recompute_threshold();
        b
    }

    /// Recompute [`SharedBuffer::cached_threshold`] after a mutation of
    /// `shared_used` or the threshold configuration.
    fn recompute_threshold(&mut self) {
        self.cached_threshold = match self.cfg.alpha {
            Some(a) => {
                let unallocated = self.shared_capacity.saturating_sub(self.shared_used);
                (a * unallocated as f64) as u64
            }
            None => self.cfg.xoff_static,
        };
    }

    /// The XOFF threshold currently in force for one (port, PG) counter.
    /// Dynamic mode: `α × unallocated shared buffer`; static mode: fixed.
    pub fn xoff_threshold(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            let fresh = match self.cfg.alpha {
                Some(a) => {
                    let unallocated = self.shared_capacity.saturating_sub(self.shared_used);
                    (a * unallocated as f64) as u64
                }
                None => self.cfg.xoff_static,
            };
            debug_assert_eq!(self.cached_threshold, fresh);
        }
        self.cached_threshold
    }

    /// Try to admit `bytes` for (`port`, `pg`). Lossless packets overflow
    /// into headroom after the threshold; lossy packets drop.
    pub fn admit(&mut self, port: u16, pg: Priority, bytes: u64, lossless: bool) -> AdmitOutcome {
        let threshold = self.xoff_threshold();
        let c = &mut self.counters[port as usize][pg.index()];
        let room_in_shared =
            self.shared_used + bytes <= self.shared_capacity && c.shared + bytes <= threshold;
        if room_in_shared {
            c.shared += bytes;
            self.shared_used += bytes;
            self.peak_shared = self.peak_shared.max(self.shared_used);
            self.recompute_threshold();
            return AdmitOutcome::Shared;
        }
        if lossless {
            if c.headroom + bytes <= self.cfg.headroom_per_port_pg {
                c.headroom += bytes;
                return AdmitOutcome::Headroom;
            }
            // Headroom overrun: a configuration error (undersized
            // headroom), surfaced as a lossless drop the experiments
            // assert to be zero.
            return AdmitOutcome::Drop;
        }
        AdmitOutcome::Drop
    }

    /// Release bytes previously admitted with `outcome`.
    pub fn release(&mut self, port: u16, pg: Priority, bytes: u64, outcome: AdmitOutcome) {
        let c = &mut self.counters[port as usize][pg.index()];
        match outcome {
            AdmitOutcome::Shared => {
                debug_assert!(c.shared >= bytes && self.shared_used >= bytes);
                c.shared -= bytes;
                self.shared_used -= bytes;
                self.recompute_threshold();
            }
            AdmitOutcome::Headroom => {
                debug_assert!(c.headroom >= bytes);
                c.headroom -= bytes;
            }
            AdmitOutcome::Drop => {}
        }
    }

    /// Total (shared + headroom) bytes held for (`port`, `pg`).
    pub fn occupancy(&self, port: u16, pg: Priority) -> u64 {
        let c = &self.counters[port as usize][pg.index()];
        c.shared + c.headroom
    }

    /// Should this counter be in XOFF? True once occupancy crosses the
    /// threshold (headroom use always implies XOFF).
    pub fn over_xoff(&self, port: u16, pg: Priority) -> bool {
        let c = &self.counters[port as usize][pg.index()];
        c.headroom > 0 || c.shared >= self.xoff_threshold()
    }

    /// Should this counter be resumed? True once occupancy falls below
    /// threshold − hysteresis and headroom has drained.
    pub fn below_xon(&self, port: u16, pg: Priority) -> bool {
        let c = &self.counters[port as usize][pg.index()];
        c.headroom == 0 && c.shared <= self.xoff_threshold().saturating_sub(self.cfg.xon_delta)
    }

    /// Read/modify the latched XOFF state (set when a pause is sent,
    /// cleared when a resume is sent).
    pub fn xoff_state(&mut self, port: u16, pg: Priority) -> &mut bool {
        &mut self.counters[port as usize][pg.index()].xoff
    }

    /// Shared-pool bytes currently in use.
    pub fn shared_used(&self) -> u64 {
        self.shared_used
    }

    /// Peak shared-pool usage observed.
    pub fn peak_shared(&self) -> u64 {
        self.peak_shared
    }

    /// Shared-pool capacity after headroom carving.
    pub fn shared_capacity(&self) -> u64 {
        self.shared_capacity
    }

    /// Rewrite the XOFF thresholds at runtime — the §6.2 incident knob
    /// (a firmware update silently shipping α = 1/64 instead of 1/16).
    /// `alpha = Some(a)` selects dynamic sharing at `a × unallocated`;
    /// `None` selects the static threshold `xoff_static`. Occupancy and
    /// headroom carving are untouched; only future admission and
    /// XOFF/XON comparisons see the new values.
    pub fn set_thresholds(&mut self, alpha: Option<f64>, xoff_static: u64) {
        self.cfg.alpha = alpha;
        self.cfg.xoff_static = xoff_static;
        self.recompute_threshold();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOSSLESS: [bool; 8] = [false, false, false, true, true, false, false, false];

    fn cfg(alpha: Option<f64>) -> BufferConfig {
        BufferConfig {
            total_bytes: 1 << 20, // 1 MB
            headroom_per_port_pg: 20 * 1024,
            alpha,
            xoff_static: 100 * 1024,
            xon_delta: 4 * 1024,
        }
    }

    #[test]
    fn headroom_carved_up_front() {
        let b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        // 4 ports × 2 lossless PGs × 20 KB = 160 KB reserved.
        assert_eq!(b.shared_capacity(), (1 << 20) - 160 * 1024);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn too_many_lossless_classes_panics() {
        // 8 lossless PGs × 64 ports × 20 KB = 10 MB > 1 MB: the §2
        // shallow-buffer constraint, enforced at construction.
        SharedBuffer::new(cfg(None), 64, &[true; 8]);
    }

    #[test]
    fn static_threshold_admission() {
        let mut b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        let p3 = Priority::new(3);
        // Fill to just under the static 100 KB threshold.
        assert_eq!(b.admit(0, p3, 99 * 1024, true), AdmitOutcome::Shared);
        assert!(!b.over_xoff(0, p3));
        // Next admission crosses into shared up to threshold...
        assert_eq!(b.admit(0, p3, 1024, true), AdmitOutcome::Shared);
        assert!(b.over_xoff(0, p3));
        // ...and beyond it, lossless traffic lands in headroom.
        assert_eq!(b.admit(0, p3, 1024, true), AdmitOutcome::Headroom);
        // Lossy traffic at the same point drops.
        assert_eq!(
            b.admit(0, Priority::new(0), 200 * 1024, false),
            AdmitOutcome::Drop
        );
    }

    #[test]
    fn lossless_headroom_overrun_drops() {
        let mut b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        let p3 = Priority::new(3);
        assert_eq!(b.admit(0, p3, 100 * 1024, true), AdmitOutcome::Shared);
        assert_eq!(b.admit(0, p3, 20 * 1024, true), AdmitOutcome::Headroom);
        assert_eq!(b.admit(0, p3, 1, true), AdmitOutcome::Drop);
    }

    #[test]
    fn release_restores_capacity_and_xon() {
        let mut b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        let p3 = Priority::new(3);
        b.admit(0, p3, 100 * 1024, true);
        let h = b.admit(0, p3, 10 * 1024, true);
        assert_eq!(h, AdmitOutcome::Headroom);
        assert!(b.over_xoff(0, p3));
        assert!(!b.below_xon(0, p3));
        b.release(0, p3, 10 * 1024, AdmitOutcome::Headroom);
        // Still at the threshold: not below XON yet (hysteresis).
        assert!(!b.below_xon(0, p3));
        b.release(0, p3, 10 * 1024, AdmitOutcome::Shared);
        assert!(b.below_xon(0, p3));
        assert_eq!(b.occupancy(0, p3), 90 * 1024);
    }

    /// The §6.2 incident in miniature: a smaller α makes XOFF fire at a
    /// fraction of the buffer, so pauses trigger far more easily.
    #[test]
    fn alpha_controls_pause_sensitivity() {
        let mk = |a| SharedBuffer::new(cfg(Some(a)), 4, &LOSSLESS);
        let b16 = mk(1.0 / 16.0);
        let b64 = mk(1.0 / 64.0);
        assert!(b16.xoff_threshold() > 3 * b64.xoff_threshold());
    }

    /// Dynamic threshold shrinks as the pool fills: admission from other
    /// ports reduces every port's XOFF point.
    #[test]
    fn dynamic_threshold_shrinks_under_load() {
        let mut b = SharedBuffer::new(cfg(Some(0.5)), 4, &LOSSLESS);
        let t0 = b.xoff_threshold();
        b.admit(1, Priority::new(4), 400 * 1024, true);
        let t1 = b.xoff_threshold();
        assert!(t1 < t0, "{t1} !< {t0}");
    }

    #[test]
    fn per_port_counters_independent() {
        let mut b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        let p3 = Priority::new(3);
        b.admit(0, p3, 100 * 1024, true);
        assert!(b.over_xoff(0, p3));
        assert!(!b.over_xoff(1, p3));
        assert_eq!(b.occupancy(1, p3), 0);
    }

    #[test]
    fn peak_tracking() {
        let mut b = SharedBuffer::new(cfg(None), 4, &LOSSLESS);
        b.admit(0, Priority::new(3), 50 * 1024, true);
        b.release(0, Priority::new(3), 50 * 1024, AdmitOutcome::Shared);
        b.admit(0, Priority::new(3), 10 * 1024, true);
        assert_eq!(b.peak_shared(), 50 * 1024);
        assert_eq!(b.shared_used(), 10 * 1024);
    }
}
