//! DCQCN congestion control (Zhu et al., SIGCOMM 2015) as pure state
//! machines.
//!
//! The paper under reproduction uses DCQCN as its flow-level congestion
//! control: "We use DCQCN, which uses ECN for congestion notification, in
//! our network … Small queue lengths reduce the PFC generation and
//! propagation probability" (§2). DCQCN has three roles:
//!
//! * **CP** (congestion point, the switch): RED-style probabilistic ECN
//!   marking on egress queue length — [`CpParams`]/[`CpState`].
//! * **NP** (notification point, the receiving NIC): on a CE-marked
//!   packet, send a CNP back to the sender, at most one per
//!   [`NpParams::min_cnp_interval_ps`] per flow — [`NpState`].
//! * **RP** (reaction point, the sending NIC): on CNP, multiplicatively
//!   cut the per-QP rate and remember the pre-cut rate as a target; then
//!   recover in three phases (fast recovery → additive increase → hyper
//!   increase) driven by a timer and a byte counter — [`RpState`].
//!
//! Everything here is time-as-argument pure logic: the NIC adapter owns
//! the clocks and calls `on_*` methods, which makes the algorithm directly
//! unit-testable (rate trajectories, alpha decay, phase transitions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Congestion-point (switch) marking parameters: RED/WRED on instantaneous
/// egress queue length, as recommended by the DCQCN paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpParams {
    /// Queue length (bytes) below which nothing is marked.
    pub kmin_bytes: u64,
    /// Queue length (bytes) above which everything is marked.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax` (ramps linearly from 0 at `kmin`).
    pub pmax: f64,
}

impl Default for CpParams {
    /// DCQCN-paper style defaults for 40 GbE (Kmin 40 KB, Kmax 200 KB,
    /// Pmax 1%).
    fn default() -> CpParams {
        CpParams {
            kmin_bytes: 40 * 1024,
            kmax_bytes: 200 * 1024,
            pmax: 0.01,
        }
    }
}

/// Congestion-point marking state (none beyond the params — marking is
/// memoryless on instantaneous queue length).
#[derive(Debug, Clone, Default)]
pub struct CpState {
    params: CpParams,
    marked: u64,
    seen: u64,
}

impl CpState {
    /// Create with the given parameters.
    pub fn new(params: CpParams) -> CpState {
        CpState {
            params,
            marked: 0,
            seen: 0,
        }
    }

    /// Decide whether to CE-mark a packet arriving to an egress queue of
    /// `queue_bytes`, given a uniform random draw in `[0,1)`.
    pub fn should_mark(&mut self, queue_bytes: u64, uniform_draw: f64) -> bool {
        self.seen += 1;
        let p = &self.params;
        let mark = if queue_bytes <= p.kmin_bytes {
            false
        } else if queue_bytes >= p.kmax_bytes {
            true
        } else {
            let frac = (queue_bytes - p.kmin_bytes) as f64 / (p.kmax_bytes - p.kmin_bytes) as f64;
            uniform_draw < frac * p.pmax
        };
        if mark {
            self.marked += 1;
        }
        mark
    }

    /// (packets seen, packets marked) — for monitoring.
    pub fn counters(&self) -> (u64, u64) {
        (self.seen, self.marked)
    }
}

/// Notification-point (receiver NIC) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpParams {
    /// Minimum interval between CNPs for one flow; the DCQCN paper uses
    /// 50 µs.
    pub min_cnp_interval_ps: u64,
}

impl Default for NpParams {
    fn default() -> NpParams {
        NpParams {
            min_cnp_interval_ps: 50_000_000, // 50 µs
        }
    }
}

/// Per-flow notification-point state.
#[derive(Debug, Clone)]
pub struct NpState {
    params: NpParams,
    last_cnp_ps: Option<u64>,
    cnps_sent: u64,
    ce_seen: u64,
}

impl NpState {
    /// Create with the given parameters.
    pub fn new(params: NpParams) -> NpState {
        NpState {
            params,
            last_cnp_ps: None,
            cnps_sent: 0,
            ce_seen: 0,
        }
    }

    /// A CE-marked packet arrived for this flow at time `now_ps`.
    /// Returns true if a CNP should be sent now.
    pub fn on_ce_packet(&mut self, now_ps: u64) -> bool {
        self.ce_seen += 1;
        let fire = match self.last_cnp_ps {
            None => true,
            Some(t) => now_ps.saturating_sub(t) >= self.params.min_cnp_interval_ps,
        };
        if fire {
            self.last_cnp_ps = Some(now_ps);
            self.cnps_sent += 1;
        }
        fire
    }

    /// (CE packets seen, CNPs actually sent).
    pub fn counters(&self) -> (u64, u64) {
        (self.ce_seen, self.cnps_sent)
    }
}

/// Reaction-point (sender NIC) parameters. Defaults follow the DCQCN
/// paper / common NIC firmware values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpParams {
    /// Line rate and the cap for the current rate, bits/second.
    pub line_rate_bps: f64,
    /// Minimum sending rate floor, bits/second.
    pub min_rate_bps: f64,
    /// EWMA gain `g` for the alpha update (1/256).
    pub g: f64,
    /// Alpha-update timer period (55 µs).
    pub alpha_timer_ps: u64,
    /// Rate-increase timer period (55 µs).
    pub increase_timer_ps: u64,
    /// Byte counter threshold that also drives rate increase (10 MB).
    pub byte_counter: u64,
    /// Stage threshold F: expiries of either counter before leaving fast
    /// recovery (5).
    pub f_stages: u32,
    /// Additive increase step, bits/second (40 Mb/s).
    pub rai_bps: f64,
    /// Hyper increase step, bits/second (400 Mb/s).
    pub rhai_bps: f64,
}

impl RpParams {
    /// Defaults for a given line rate.
    pub fn for_line_rate(line_rate_bps: u64) -> RpParams {
        RpParams {
            line_rate_bps: line_rate_bps as f64,
            min_rate_bps: 10e6,
            g: 1.0 / 256.0,
            alpha_timer_ps: 55_000_000,
            increase_timer_ps: 55_000_000,
            byte_counter: 10 * 1024 * 1024,
            f_stages: 5,
            rai_bps: 40e6,
            rhai_bps: 400e6,
        }
    }
}

/// Per-QP reaction-point state: the DCQCN sender algorithm.
#[derive(Debug, Clone)]
pub struct RpState {
    params: RpParams,
    /// Current (enforced) rate, b/s.
    rc: f64,
    /// Target rate, b/s.
    rt: f64,
    /// Congestion estimate α ∈ [0, 1].
    alpha: f64,
    /// Bytes sent since the byte counter last expired.
    bytes_since: u64,
    /// Byte-counter expiries since the last rate decrease.
    bc_stage: u32,
    /// Increase-timer expiries since the last rate decrease.
    t_stage: u32,
    /// Whether any CNP has ever been received (rate stays at line rate
    /// until first congestion feedback).
    cut_ever: bool,
    /// True if a CNP arrived during the current alpha-timer period.
    cnp_this_period: bool,
    cnps: u64,
    decreases: u64,
    rate_changes: u64,
}

impl RpState {
    /// A fresh RP at line rate.
    pub fn new(params: RpParams) -> RpState {
        RpState {
            rc: params.line_rate_bps,
            rt: params.line_rate_bps,
            alpha: 1.0,
            params,
            bytes_since: 0,
            bc_stage: 0,
            t_stage: 0,
            cut_ever: false,
            cnp_this_period: false,
            cnps: 0,
            decreases: 0,
            rate_changes: 0,
        }
    }

    /// The rate the NIC should currently pace this QP at, b/s.
    pub fn rate_bps(&self) -> f64 {
        self.rc
    }

    /// Congestion estimate α (1 = fully congested).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// (CNPs received, multiplicative decreases applied).
    pub fn counters(&self) -> (u64, u64) {
        (self.cnps, self.decreases)
    }

    /// Times the enforced rate `Rc` actually moved (decreases and
    /// recovery steps that changed the pacing rate) — the telemetry
    /// bus's `rate_change` event count.
    pub fn rate_changes(&self) -> u64 {
        self.rate_changes
    }

    /// A CNP arrived: multiplicative decrease and reset the recovery
    /// machinery. `Rt ← Rc; Rc ← Rc·(1 − α/2)`.
    pub fn on_cnp(&mut self) {
        self.cnps += 1;
        self.cnp_this_period = true;
        self.cut_ever = true;
        self.rt = self.rc;
        let old_rc = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(self.params.min_rate_bps);
        if self.rc != old_rc {
            self.rate_changes += 1;
        }
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g;
        self.bytes_since = 0;
        self.bc_stage = 0;
        self.t_stage = 0;
        self.decreases += 1;
    }

    /// Alpha-update timer expired (call every `alpha_timer_ps`): if no CNP
    /// arrived this period, α decays toward zero.
    pub fn on_alpha_timer(&mut self) {
        if !self.cnp_this_period {
            self.alpha *= 1.0 - self.params.g;
        }
        self.cnp_this_period = false;
    }

    /// Account `bytes` sent on this QP; may trigger a byte-counter stage.
    pub fn on_bytes_sent(&mut self, bytes: u64) {
        if !self.cut_ever {
            return; // still at line rate, nothing to recover
        }
        self.bytes_since += bytes;
        while self.bytes_since >= self.params.byte_counter {
            self.bytes_since -= self.params.byte_counter;
            self.bc_stage = self.bc_stage.saturating_add(1);
            self.increase();
        }
    }

    /// Rate-increase timer expired (call every `increase_timer_ps`).
    pub fn on_increase_timer(&mut self) {
        if !self.cut_ever {
            return;
        }
        self.t_stage = self.t_stage.saturating_add(1);
        self.increase();
    }

    /// One recovery step; phase depends on how many stages each counter
    /// has accumulated since the last decrease.
    fn increase(&mut self) {
        let f = self.params.f_stages;
        if self.bc_stage > f && self.t_stage > f {
            // Hyper increase: both counters deep into recovery.
            self.rt = (self.rt + self.params.rhai_bps).min(self.params.line_rate_bps);
        } else if self.bc_stage > f || self.t_stage > f {
            // Additive increase.
            self.rt = (self.rt + self.params.rai_bps).min(self.params.line_rate_bps);
        }
        // Fast recovery (and every phase): close half the gap to target.
        let old_rc = self.rc;
        self.rc = ((self.rt + self.rc) / 2.0).min(self.params.line_rate_bps);
        if self.rc != old_rc {
            self.rate_changes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp() -> RpState {
        RpState::new(RpParams::for_line_rate(40_000_000_000))
    }

    #[test]
    fn starts_at_line_rate() {
        let s = rp();
        assert_eq!(s.rate_bps(), 40e9);
        assert_eq!(s.alpha(), 1.0);
    }

    #[test]
    fn first_cnp_halves_rate() {
        let mut s = rp();
        s.on_cnp();
        // α = 1 → cut by α/2 = 50%.
        assert!((s.rate_bps() - 20e9).abs() < 1e6, "rc = {}", s.rate_bps());
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut s = rp();
        s.on_cnp();
        let a0 = s.alpha();
        for _ in 0..256 {
            s.on_alpha_timer();
        }
        // (1 - 1/256)^256 ≈ e^-1.
        assert!(s.alpha() < a0 * 0.4, "alpha = {}", s.alpha());
    }

    #[test]
    fn repeated_cnps_converge_to_floor_not_zero() {
        let mut s = rp();
        for _ in 0..10_000 {
            s.on_cnp();
        }
        assert!(s.rate_bps() >= 10e6);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut s = rp();
        s.on_cnp(); // rt = 40G, rc = 20G
        for _ in 0..5 {
            s.on_increase_timer();
        }
        // After 5 halvings of the gap: 40 - 20/2^5 = 39.375G.
        assert!(
            (s.rate_bps() - 39.375e9).abs() < 1e6,
            "rc = {}",
            s.rate_bps()
        );
        assert!(s.rate_bps() < 40e9);
    }

    #[test]
    fn additive_then_hyper_increase_recovers_to_line_rate() {
        let mut s = rp();
        s.on_cnp();
        for _ in 0..200 {
            s.on_increase_timer();
        }
        // Timer-driven additive increase alone must restore line rate.
        assert!((s.rate_bps() - 40e9).abs() < 1e3, "rc = {}", s.rate_bps());
    }

    #[test]
    fn byte_counter_drives_stages() {
        let mut s = rp();
        s.on_cnp();
        let before = s.rate_bps();
        s.on_bytes_sent(10 * 1024 * 1024); // one full byte-counter period
        assert!(
            s.rate_bps() > before,
            "byte counter should trigger recovery"
        );
    }

    #[test]
    fn no_recovery_before_first_cnp() {
        let mut s = rp();
        s.on_bytes_sent(100 * 1024 * 1024);
        s.on_increase_timer();
        assert_eq!(s.rate_bps(), 40e9);
    }

    #[test]
    fn hyper_increase_faster_than_additive() {
        // Cut twice so the target rate sits well below line rate, then
        // compare recovery driven by the timer alone (additive phase)
        // against recovery driven by timer + byte counter (hyper phase).
        let setup = || {
            let mut s = rp();
            s.on_cnp();
            s.on_cnp(); // rt = 20G, rc ≈ 10G — headroom above the target
            s
        };
        let mut additive = setup();
        let mut hyper = setup();
        for _ in 0..30 {
            additive.on_increase_timer();
            hyper.on_increase_timer();
            hyper.on_bytes_sent(10 * 1024 * 1024);
        }
        assert!(
            hyper.rate_bps() > additive.rate_bps(),
            "hyper {} <= additive {}",
            hyper.rate_bps(),
            additive.rate_bps()
        );
    }

    #[test]
    fn cnp_resets_recovery_stages() {
        let mut s = rp();
        s.on_cnp();
        for _ in 0..10 {
            s.on_increase_timer();
        }
        let recovered = s.rate_bps();
        s.on_cnp();
        assert!(s.rate_bps() < recovered);
        // Post-CNP the target is the pre-cut rate, and stages restart in
        // fast recovery: first step closes half the gap.
        let rc0 = s.rate_bps();
        s.on_increase_timer();
        assert!((s.rate_bps() - (recovered + rc0) / 2.0).abs() < 1e6);
    }

    #[test]
    fn rate_changes_count_actual_moves() {
        let mut s = rp();
        assert_eq!(s.rate_changes(), 0);
        s.on_increase_timer(); // pre-CNP: rc pinned at line rate, no change
        assert_eq!(s.rate_changes(), 0);
        s.on_cnp(); // multiplicative decrease
        assert_eq!(s.rate_changes(), 1);
        s.on_increase_timer(); // fast recovery moves rc toward target
        assert_eq!(s.rate_changes(), 2);
    }

    #[test]
    fn np_rate_limits_cnps() {
        let mut np = NpState::new(NpParams::default());
        assert!(np.on_ce_packet(0));
        assert!(!np.on_ce_packet(10_000_000)); // 10 µs later: suppressed
        assert!(!np.on_ce_packet(49_000_000));
        assert!(np.on_ce_packet(50_000_000)); // 50 µs: allowed
        assert_eq!(np.counters(), (4, 2));
    }

    #[test]
    fn cp_marking_ramp() {
        let mut cp = CpState::new(CpParams::default());
        // Below Kmin: never.
        assert!(!cp.should_mark(10 * 1024, 0.0));
        // Above Kmax: always.
        assert!(cp.should_mark(300 * 1024, 0.999));
        // Midpoint: probability pmax/2.
        let mid = (40 + (200 - 40) / 2) * 1024;
        assert!(cp.should_mark(mid, 0.004));
        assert!(!cp.should_mark(mid, 0.006));
        assert_eq!(cp.counters().0, 4);
    }

    /// Closed-loop stability: if the congestion point marks only while the
    /// rate exceeds a capacity threshold, the rate converges to a band
    /// around that threshold instead of collapsing or pinning at line
    /// rate. (Open-loop constant CNPs correctly cause monotone decrease —
    /// that is the algorithm working, not a stable operating point.)
    #[test]
    fn closed_loop_converges_to_bottleneck() {
        let capacity = 10e9;
        let mut s = rp();
        let mut rates = Vec::new();
        for round in 0..3000 {
            if s.rate_bps() > capacity {
                s.on_cnp();
            }
            s.on_increase_timer();
            s.on_alpha_timer();
            // Byte counter advances in proportion to the current rate over
            // one 55 µs period.
            s.on_bytes_sent((s.rate_bps() * 55e-6 / 8.0) as u64);
            if round > 2500 {
                rates.push(s.rate_bps());
            }
        }
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(min > capacity * 0.3, "collapsed: {min}");
        assert!(max < capacity * 2.0, "overshoot: {max}");
    }
}
